"""E16 — TABLE IV: MDU/SSBP characterization across vendors.

Reproduces the comparison rows and demonstrates the security-relevant
difference operationally: Intel/ARM selection is computable from the
attacker's own addresses (collisions are free), while AMD's hashed-IPA
selection forces the code-sliding search measured in the Fig 7
experiment.
"""

from __future__ import annotations

from repro.baselines import ArmMdu, IntelMdu, amd_characterization
from repro.experiments.base import ExperimentResult
from repro.experiments.fig7_collisions import ssbp_attempt_samples

__all__ = ["run"]


def run(collision_trials: int = 4, seed: int = 4000) -> ExperimentResult:
    intel = IntelMdu.characterization()
    arm = ArmMdu.characterization()
    amd = amd_characterization()
    amd_attempts = ssbp_attempt_samples(trials=collision_trials, seed=seed)
    amd_mean = sum(amd_attempts) / len(amd_attempts)

    result = ExperimentResult(
        experiment_id="table4",
        title="Characterization of MDU and SSBP (Intel / ARM / AMD)",
        headers=["vendor", "state machine size", "selection", "collision cost"],
        paper_claim=(
            "AMD's state machine (6+2 bits) and whole-IPA hashed "
            "selection exceed Intel's (4 bit, low-8 IVA/IPA) and ARM's "
            "(1 bit, low-16 IVA)"
        ),
    )
    result.add_row(
        intel.vendor, intel.state_bits, intel.selection,
        f"{IntelMdu().collision_attempts_needed()} (computed)",
    )
    result.add_row(
        arm.vendor, arm.state_bits, arm.selection,
        f"{ArmMdu().collision_attempts_needed()} (computed)",
    )
    result.add_row(
        amd.vendor, amd.state_bits, amd.selection,
        f"~{amd_mean:.0f} probes (searched)",
    )
    result.metrics["amd_mean_collision_attempts"] = round(amd_mean, 1)
    return result
