"""Experiment infrastructure: structured results and table rendering.

Every experiment driver returns an :class:`ExperimentResult` whose rows
regenerate the corresponding paper table or figure series; the runner
(:mod:`repro.experiments.runner`) renders them as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentResult", "format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table with column alignment."""
    grid = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in grid)) if grid else len(headers[col])
        for col in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(list(headers)), rule] + [line(row) for row in grid])


@dataclass
class ExperimentResult:
    """Outcome of one paper-artifact reproduction."""

    experiment_id: str           # e.g. "fig2", "table1"
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_claim: str = ""
    #: Free-form measured summary values keyed by name (for EXPERIMENTS.md).
    metrics: dict[str, float | str] = field(default_factory=dict)

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_claim:
            parts.append(f"paper claim: {self.paper_claim}")
        parts.append(format_table(self.headers, self.rows))
        if self.metrics:
            parts.append(
                "metrics: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.metrics.items()))
            )
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
