"""Experiment infrastructure: structured results and table rendering.

Every experiment driver returns an :class:`ExperimentResult` whose rows
regenerate the corresponding paper table or figure series; the runner
(:mod:`repro.experiments.runner`) renders them as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ArtifactError

__all__ = ["ExperimentResult", "format_table", "RESULT_SCHEMA_VERSION"]

#: Version stamp embedded in every serialized result; bump on layout changes.
RESULT_SCHEMA_VERSION = 1


def _json_safe(value: Any) -> Any:
    """Coerce a table cell into something the json module round-trips.

    Result rows hold strings, numbers and booleans; anything richer (an
    enum, a numpy scalar) degrades to ``str`` so artifacts stay portable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table with column alignment."""
    grid = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in grid)) if grid else len(headers[col])
        for col in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(list(headers)), rule] + [line(row) for row in grid])


@dataclass
class ExperimentResult:
    """Outcome of one paper-artifact reproduction."""

    experiment_id: str           # e.g. "fig2", "table1"
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    paper_claim: str = ""
    #: Free-form measured summary values keyed by name (for EXPERIMENTS.md).
    metrics: dict[str, float | str] = field(default_factory=dict)
    #: Run metadata, filled in by the campaign runner (not by drivers).
    seed: int | None = None
    wall_time_s: float | None = None
    worker: str | None = None
    cache_hit: bool = False
    #: Per-task metrics rollup (``repro-experiments --metrics``): a
    #: deterministic counters/histograms snapshot from
    #: :mod:`repro.telemetry.metrics`.  None (the default) is omitted
    #: from serialization so pre-telemetry artifacts stay byte-identical.
    telemetry: dict[str, Any] | None = None

    def add_row(self, *cells) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_claim:
            parts.append(f"paper claim: {self.paper_claim}")
        parts.append(format_table(self.headers, self.rows))
        if self.metrics:
            parts.append(
                "metrics: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.metrics.items()))
            )
        parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-safe dict (the artifact schema)."""
        data = {
            "schema": RESULT_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_json_safe(cell) for cell in row] for row in self.rows],
            "notes": list(self.notes),
            "paper_claim": self.paper_claim,
            "metrics": {key: _json_safe(val) for key, val in self.metrics.items()},
            "seed": self.seed,
            "wall_time_s": self.wall_time_s,
            "worker": self.worker,
            "cache_hit": self.cache_hit,
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises :class:`repro.errors.ArtifactError` on a missing or
        incompatible schema stamp or missing required keys.
        """
        if not isinstance(data, dict):
            raise ArtifactError(f"artifact must be a dict, got {type(data).__name__}")
        schema = data.get("schema")
        if schema != RESULT_SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported artifact schema {schema!r} "
                f"(this library reads version {RESULT_SCHEMA_VERSION})"
            )
        try:
            return cls(
                experiment_id=data["experiment_id"],
                title=data["title"],
                headers=list(data["headers"]),
                rows=[list(row) for row in data.get("rows", [])],
                notes=list(data.get("notes", [])),
                paper_claim=data.get("paper_claim", ""),
                metrics=dict(data.get("metrics", {})),
                seed=data.get("seed"),
                wall_time_s=data.get("wall_time_s"),
                worker=data.get("worker"),
                cache_hit=bool(data.get("cache_hit", False)),
                telemetry=data.get("telemetry"),
            )
        except KeyError as exc:
            raise ArtifactError(f"artifact missing required key {exc}") from exc
