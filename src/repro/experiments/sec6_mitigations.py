"""E17 — Section VI: which mitigation stops which attack?

Runs reduced leak campaigns under each mitigation:

* **SSBD** stops both attacks (and all probing);
* **PSFD** stops nothing (the paper's negative result);
* **flush SSBP on context switch** stops the cross-process Spectre-CTL
  but not the same-process Spectre-STL;
* **randomized selection** (re-salt on switch/syscall) stops both
  out-of-place attacks (collisions go stale before use).
"""

from __future__ import annotations

from repro.attacks.spectre_ctl import SpectreCTL
from repro.attacks.spectre_stl import SpectreSTL
from repro.cpu.machine import Machine
from repro.errors import ReproError
from repro.experiments.base import ExperimentResult

__all__ = ["run", "stl_leak_works", "ctl_leak_works"]

_SECRET = b"\x42\xa5"


def stl_leak_works(machine: Machine, slide_pages: int = 16) -> bool:
    """Attempt a small out-of-place Spectre-STL campaign; True when the
    secret is recovered."""
    try:
        attack = SpectreSTL(machine=machine, slide_pages=slide_pages)
        attack.find_collision()
        report = attack.leak(_SECRET)
    except ReproError:
        return False
    return report.accuracy == 1.0


def ctl_leak_works(machine: Machine, slide_pages: int = 8) -> bool:
    """Attempt a one-byte cross-process Spectre-CTL campaign."""
    try:
        attack = SpectreCTL(machine=machine, slide_pages=slide_pages)
        attack.find_collisions()
        report = attack.leak(_SECRET[:1])
    except ReproError:
        return False
    return report.accuracy == 1.0


_MITIGATIONS: list[tuple[str, dict, dict]] = [
    # (name, machine kwargs, spec_ctrl bits)
    ("none", {}, {}),
    ("SSBD", {}, {"ssbd": True}),
    ("PSFD", {}, {"psfd": True}),
    ("flush SSBP on switch", {"flush_ssbp_on_switch": True}, {}),
    ("randomized selection", {"resalt_on_switch": True}, {}),
]

#: Expected outcome per (mitigation, attack): does the attack still work?
_PAPER_EXPECTATION: dict[tuple[str, str], bool] = {
    ("none", "stl"): True,
    ("none", "ctl"): True,
    ("SSBD", "stl"): False,
    ("SSBD", "ctl"): False,
    ("PSFD", "stl"): True,
    ("PSFD", "ctl"): True,
    ("flush SSBP on switch", "stl"): True,
    ("flush SSBP on switch", "ctl"): False,
    ("randomized selection", "stl"): False,
    ("randomized selection", "ctl"): False,
}


def run(seed: int = 616) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec6-mitigations",
        title="Mitigation matrix: attack viability under each defense",
        headers=["mitigation", "Spectre-STL works", "Spectre-CTL works", "matches expectation"],
        paper_claim=(
            "SSBD stops the attacks (at Fig 12's cost); PSFD does not; "
            "flushing SSBP on switches stops cross-process attacks; "
            "randomized selection defeats out-of-place collision finding"
        ),
    )
    for name, machine_kwargs, spec_bits in _MITIGATIONS:
        machine_stl = Machine(seed=seed, **machine_kwargs)
        machine_ctl = Machine(seed=seed + 1, **machine_kwargs)
        for machine in (machine_stl, machine_ctl):
            if spec_bits.get("ssbd"):
                machine.core.set_ssbd(True)
            if spec_bits.get("psfd"):
                machine.core.set_psfd(True)
        stl = stl_leak_works(machine_stl)
        ctl = ctl_leak_works(machine_ctl)
        matches = (
            stl == _PAPER_EXPECTATION[(name, "stl")]
            and ctl == _PAPER_EXPECTATION[(name, "ctl")]
        )
        result.add_row(name, stl, ctl, matches)
        result.metrics[f"{name}:stl"] = str(stl)
        result.metrics[f"{name}:ctl"] = str(ctl)
    result.add_note(
        "PSFD is modeled faithfully as ineffective (Section VI-A: the "
        "predictors continue to function with the bit set)"
    )
    return result
