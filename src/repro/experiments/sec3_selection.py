"""E3 — Section III-C.1: what selects a predictor entry?

The paper's four-step argument that selection is keyed by the
*instruction physical address* (IPA), not the virtual one:

1. varying the *data* addresses never selects a new entry;
2. after ``fork`` (copy-on-write: same IVA, same IPA) the child observes
   the parent's training;
3. after ``mprotect`` + a dummy write (the kernel copies the page: same
   IVA, new IPA) the collision disappears;
4. through shared ``mmap`` (different IVA, same IPA) the collision is
   back.
"""

from __future__ import annotations

from repro.cpu.machine import Machine
from repro.experiments.base import ExperimentResult
from repro.mem.physical import PAGE_SHIFT, PAGE_SIZE
from repro.osm.address_space import Perm
from repro.experiments.selection_probes import SelectionObserver

__all__ = ["run"]


def run(seed: int = 31) -> ExperimentResult:
    machine = Machine(seed=seed)
    kernel = machine.kernel
    observer = SelectionObserver(machine)

    result = ExperimentResult(
        experiment_id="sec3-selection",
        title="Predictor-entry selection: IVA vs IPA",
        headers=["experiment", "IVA", "IPA", "collision observed", "matches paper"],
        paper_claim="selection depends on the load's IPA, not its IVA",
    )

    # ------------------------------------------------------------ step 1
    parent = kernel.create_process("selection-parent")
    site = observer.place_site(parent)
    parent_observer = observer.observer_for(parent)
    # Train with one data address, re-run aliasing pairs at another
    # buffer: no fresh G (the same entry is already trained).
    parent_observer.drain_c3(site)
    parent_observer.run(site, aliasing=True)       # G trains the entry
    first = parent_observer.observe(site, aliasing=True)
    other_buffer = kernel.map_anonymous(parent, pages=1)
    saved = parent_observer.load_va
    parent_observer.load_va = other_buffer + 0x80  # new data addresses
    second = parent_observer.observe(site, aliasing=True)
    parent_observer.load_va = saved
    data_independent = second.name != "ROLLBACK_BYPASS"
    result.add_row(
        "vary data addresses", "same", "same",
        "same entry" if data_independent else "new entry",
        data_independent,
    )

    # ------------------------------------------------------------ step 2
    observer.charge(parent, site)
    child = kernel.fork(parent)
    shared = observer.reads_charged(child, site)   # same IVA, same IPA
    result.add_row("fork (copy-on-write)", "same", "same", shared, shared)

    # ------------------------------------------------------------ step 3
    observer.charge(parent, site)
    code_page = site.base_iva & ~(PAGE_SIZE - 1)
    pages = (site.byte_size >> PAGE_SHIFT) + 1
    kernel.mprotect(child, code_page, pages, Perm.RWX)
    kernel.write(child, code_page + 0xE00, b"dummy-data")  # COW break
    moved = observer.reads_charged(child, site)    # same IVA, NEW IPA
    result.add_row(
        "mprotect + dummy write (remap)", "same", "different", moved, not moved
    )

    # ------------------------------------------------------------ step 4
    observer.charge(parent, site)
    stranger = kernel.create_process("selection-mmap")
    mapped = kernel.map_shared(
        stranger, parent, code_page, pages, perms=Perm.RX
    )
    view = observer.view(site, mapped + (site.base_iva - code_page))
    via_mmap = observer.reads_charged(stranger, view)  # new IVA, same IPA
    result.add_row("shared mmap", "different", "same", via_mmap, via_mmap)

    conclusion = data_independent and shared and not moved and via_mmap
    result.metrics["conclusion_ipa_selected"] = str(conclusion)
    return result
