"""E2 — TABLE I: validating the counter state machine.

The paper's model explains > 99.8% of randomly generated sequences; we
reproduce the validation loop (random a/n sequences, timing-classified
observations vs the model) and additionally replay every sequence the
paper quotes verbatim.
"""

from __future__ import annotations

from repro.core.counters import CounterState
from repro.core.state_machine import run_sequence as model_run
from repro.experiments.base import ExperimentResult
from repro.revng.sequences import format_types, to_bools
from repro.revng.state_infer import ModelValidator
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier

__all__ = ["run", "PAPER_SEQUENCES"]

#: Sequences the paper reports, with their published outcomes.
PAPER_SEQUENCES: list[tuple[str, str]] = [
    ("7n, a", "7H, G"),
    ("n, a, 7n", "H, G, 4E, 3H"),
    ("a, 4n, a, 4n, a, 16n", "G, 4E, G, 4E, G, 15F, H"),
]


def run(sequences: int = 50, length: int = 40, seed: int = 11) -> ExperimentResult:
    harness = StldHarness()
    classifier = TimingClassifier(harness)
    classifier.calibrate()
    validator = ModelValidator(harness, classifier)
    report = validator.validate_random(sequences=sequences, length=length, seed=seed)

    result = ExperimentResult(
        experiment_id="table1",
        title="State machine of the speculative memory access predictors",
        headers=["check", "outcome"],
        paper_claim="the model explains > 99.8% of random sequences",
    )
    result.add_row(
        f"random validation ({sequences} seqs x {length})",
        f"agreement {report.agreement:.4f}",
    )
    for sequence, published in PAPER_SEQUENCES:
        types, _ = model_run(CounterState(), to_bools(sequence))
        got = format_types(types)
        result.add_row(
            f"phi({sequence})",
            f"{got} ({'matches paper' if got == published else 'DIFFERS: ' + published})",
        )
    result.metrics["agreement"] = round(report.agreement, 4)
    result.metrics["mismatches"] = len(report.mismatches)
    result.add_note(
        "amendments to TABLE I as printed (DESIGN.md section 2): C4 "
        "increments before the C3 charge check; the S2/PSF-disabled n "
        "transition decays C0."
    )
    return result
