"""E18/E19/E20 — further Section IV-D / V-B / V-D results.

* **covert-channel** — Vulnerability 4's constructive consequence: a
  cross-process covert channel through SSBP alone (no shared memory, no
  cache lines), with handshake cost, error rate and bandwidth.
* **stl-inplace** — the prior-art baseline the paper's out-of-place
  attack improves: in-place Spectre-STL needs the *victim* executed
  many times per byte; out-of-place needs exactly one victim run.
* **address-leak** — Section V-D's second side-channel impact: hash
  collisions among the attacker's own pages reveal relative
  physical-frame information that user space should not have.
"""

from __future__ import annotations

import random

from repro.attacks.address_leak import AddressMappingLeak
from repro.attacks.covert_channel import SsbpCovertChannel
from repro.attacks.spectre_stl import SpectreSTL
from repro.attacks.spectre_stl_inplace import SpectreSTLInPlace
from repro.cpu.machine import Machine
from repro.experiments.base import ExperimentResult

__all__ = ["run_covert_channel", "run_stl_inplace", "run_address_leak"]


def run_covert_channel(bits: int = 64, seed: int = 42) -> ExperimentResult:
    channel = SsbpCovertChannel()
    attempts = channel.handshake()
    payload = [random.Random(seed).randrange(2) for _ in range(bits)]
    report = channel.transmit(payload)
    result = ExperimentResult(
        experiment_id="covert-channel",
        title="Cross-process covert channel through SSBP alone",
        headers=["quantity", "measured"],
        paper_claim=(
            "the predictors can be used to construct covert channels "
            "for data transmission (Vulnerability 4)"
        ),
    )
    result.add_row("handshake (code-sliding attempts)", attempts)
    result.add_row("bits transmitted", len(payload))
    result.add_row("bit errors", report.errors)
    result.add_row("bandwidth (bit/s, simulated)", f"{report.bits_per_second:,.0f}")
    result.metrics["error_rate"] = report.error_rate
    result.metrics["bits_per_second"] = round(report.bits_per_second)
    result.add_note("sender and receiver share no memory mappings at all")
    return result


def run_stl_inplace(secret_bytes: int = 8, seed: int = 24) -> ExperimentResult:
    secret = bytes(random.Random(seed).randrange(256) for _ in range(secret_bytes))
    in_place = SpectreSTLInPlace()
    in_place_report = in_place.leak(secret)

    out_of_place = SpectreSTL()
    out_of_place.find_collision()
    report = out_of_place.leak(secret)
    # The out-of-place attack runs the victim exactly once per byte
    # (plus one retry on a failed round).
    result = ExperimentResult(
        experiment_id="stl-inplace",
        title="In-place vs out-of-place Spectre-STL",
        headers=["variant", "accuracy", "victim invocations / byte"],
        paper_claim=(
            "out-of-place training needs only ONE victim execution per "
            "leaked secret; in-place needs the victim run many times"
        ),
    )
    result.add_row(
        "in-place (prior art)",
        f"{in_place_report.accuracy:.0%}",
        f"{in_place_report.invocations_per_byte:.1f}",
    )
    result.add_row("out-of-place (the paper)", f"{report.accuracy:.0%}", "1.0")
    result.metrics["inplace_invocations_per_byte"] = round(
        in_place_report.invocations_per_byte, 1
    )
    result.metrics["inplace_accuracy"] = in_place_report.accuracy
    result.metrics["outofplace_accuracy"] = report.accuracy
    return result


def run_address_leak(pages: int = 4, seed: int = 808) -> ExperimentResult:
    leak = AddressMappingLeak(machine=Machine(seed=seed), pages=pages)
    result = ExperimentResult(
        experiment_id="address-leak",
        title="VA->PA mapping information leaked through the hash",
        headers=["page pair", "recovered H(Fi)^H(Fj)", "ground truth", "correct"],
        paper_claim=(
            "the hash function contains physical-address information and "
            "may leak the virtual-to-physical mapping (Section V-D)"
        ),
    )
    correct = 0
    recovered = leak.recover_all()
    for item in recovered:
        truth = leak.true_relative_hash(item.page_i, item.page_j)
        match = item.recovered == truth
        correct += match
        result.add_row(
            f"{item.page_i} vs {item.page_j}",
            f"{item.recovered:#05x}",
            f"{truth:#05x}",
            match,
        )
    result.metrics["pairs_recovered"] = correct
    result.metrics["pairs_total"] = len(recovered)
    result.add_note(
        "12 bits of relative physical-frame information per page pair, "
        "recovered without pagemap/PTEditor"
    )
    return result
