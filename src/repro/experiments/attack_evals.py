"""E11/E12/E13 — Section V: leak-campaign evaluations.

The paper leaks 10,000 random bytes per attack; the simulated campaigns
default to smaller counts (every byte costs hundreds of simulated
program runs) and report accuracy plus bandwidth computed from simulated
cycles at the platform clock.  Absolute B/s differ from silicon (the
simulator's victims run leaner than real processes); the paper's
*ordering* — STL > CTL > web in bandwidth, web clearly least accurate —
is the reproduced claim.
"""

from __future__ import annotations

import random

from repro.attacks.spectre_ctl import SpectreCTL
from repro.attacks.spectre_stl import SpectreSTL
from repro.attacks.web import SpectreCTLWeb
from repro.experiments.base import ExperimentResult
from repro.osm.domains import SecurityDomain

__all__ = ["run_stl", "run_ctl", "run_web", "run_all"]


def _random_secret(length: int, seed: int) -> bytes:
    return bytes(random.Random(seed).randrange(256) for _ in range(length))


def run_stl(secret_bytes: int = 64, seed: int = 5150) -> ExperimentResult:
    attack = SpectreSTL()
    attack.find_collision()
    report = attack.leak(_random_secret(secret_bytes, seed))
    result = ExperimentResult(
        experiment_id="spectre-stl",
        title="Out-of-place Spectre-STL (Section V-B)",
        headers=["metric", "measured", "paper"],
        paper_claim="accuracy 99.95%, 416 B/s, collision in 16 pages (>90%)",
    )
    result.add_row("bytes leaked", len(report.recovered), "10,000")
    result.add_row("accuracy", f"{report.accuracy:.2%}", "99.95%")
    result.add_row("bandwidth (B/s)", f"{report.bytes_per_second:,.0f}", "416")
    result.add_row(
        "collision candidates tried", report.validation_attempts, "<= 16 pages"
    )
    result.metrics["accuracy"] = report.accuracy
    result.metrics["bytes_per_second"] = round(report.bytes_per_second)
    result.metrics["errors"] = len(report.per_byte_errors)
    result.add_note(
        "bandwidth is simulated-cycle-derived; the victim loop is leaner "
        "than a real process, so absolute B/s exceed silicon"
    )
    return result


def run_ctl(
    secret_bytes: int = 24,
    seed: int = 5151,
    victim_domain: SecurityDomain = SecurityDomain.USER,
) -> ExperimentResult:
    attack = SpectreCTL(victim_domain=victim_domain)
    attack.find_collisions()
    report = attack.leak(_random_secret(secret_bytes, seed))
    result = ExperimentResult(
        experiment_id="spectre-ctl",
        title="Spectre-CTL, cross-process (Section V-C.1)",
        headers=["metric", "measured", "paper"],
        paper_claim="accuracy 99.97%, 384 B/s, works across processes",
    )
    result.add_row("victim domain", victim_domain.value, "user / kernel")
    result.add_row("bytes leaked", len(report.recovered), "10,000")
    result.add_row("accuracy", f"{report.accuracy:.2%}", "99.97%")
    result.add_row("bandwidth (B/s)", f"{report.bytes_per_second:,.0f}", "384")
    result.add_row("bytes missed", len(report.missed_bytes), "~0")
    result.metrics["accuracy"] = report.accuracy
    result.metrics["bytes_per_second"] = round(report.bytes_per_second)
    return result


def run_web(secret_bytes: int = 16, seed: int = 5152) -> ExperimentResult:
    attack = SpectreCTLWeb()
    attack.find_collisions()
    report = attack.leak(_random_secret(secret_bytes, seed))
    result = ExperimentResult(
        experiment_id="spectre-ctl-web",
        title="Spectre-CTL in a web browser model (Section V-C.2)",
        headers=["metric", "measured", "paper"],
        paper_claim="~170 B/s at 81.1% accuracy with a ~10 ns timer",
    )
    result.add_row("timer resolution", f"{attack._timer.tick_cycles} cycles", "~10 ns")
    result.add_row("bytes leaked", len(report.recovered), "10,000")
    result.add_row("accuracy", f"{report.accuracy:.2%}", "81.1%")
    result.add_row("bandwidth (B/s)", f"{report.bytes_per_second:,.0f}", "170")
    result.metrics["accuracy"] = report.accuracy
    result.metrics["bytes_per_second"] = round(report.bytes_per_second)
    return result


def run_all(seed: int = 5150) -> ExperimentResult:
    """The cross-attack comparison (the ordering claim)."""
    stl = run_stl(secret_bytes=32, seed=seed)
    ctl = run_ctl(secret_bytes=12, seed=seed + 1)
    web = run_web(secret_bytes=10, seed=seed + 2)
    result = ExperimentResult(
        experiment_id="attack-comparison",
        title="Attack comparison: bandwidth and accuracy ordering",
        headers=["attack", "accuracy", "B/s"],
        paper_claim="STL (416) > CTL (384) > web (170); web least accurate",
    )
    for sub, name in ((stl, "Spectre-STL"), (ctl, "Spectre-CTL"), (web, "Spectre-CTL web")):
        result.add_row(
            name, f"{sub.metrics['accuracy']:.2%}", sub.metrics["bytes_per_second"]
        )
    ordering = (
        stl.metrics["bytes_per_second"]
        > ctl.metrics["bytes_per_second"]
        > web.metrics["bytes_per_second"]
    )
    result.metrics["bandwidth_ordering_holds"] = str(bool(ordering))
    result.metrics["web_least_accurate"] = str(
        web.metrics["accuracy"] <= min(stl.metrics["accuracy"], ctl.metrics["accuracy"])
    )
    return result
