"""Regenerate measured-value tables and compare campaign artifacts.

Two jobs, both over the JSON artifacts a campaign writes with
``repro-experiments --json DIR``:

* ``python -m repro.experiments.report --json results/ --write EXPERIMENTS.md``
  rewrites the generated measured-values table in EXPERIMENTS.md (the
  block between the BEGIN/END markers) from the artifacts, so the
  published numbers are never hand-copied;
* ``python -m repro.experiments.report --compare A B`` exits non-zero if
  any experiment's rows or metrics differ between two artifact
  directories — the determinism check behind ``make experiments-check``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.artifacts import load_artifacts
from repro.experiments.base import ExperimentResult

__all__ = ["render_measured_table", "update_markdown", "compare_artifacts", "main"]

BEGIN_MARK = "<!-- BEGIN GENERATED MEASURED VALUES (repro.experiments.report) -->"
END_MARK = "<!-- END GENERATED MEASURED VALUES -->"


def _format_metric(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_measured_table(results: dict[str, ExperimentResult]) -> str:
    """One markdown table row per artifact: id, seed, wall time, metrics."""
    lines = [
        "| Id | Seed | Wall time | Measured metrics |",
        "|---|---|---|---|",
    ]
    for name, result in results.items():
        metrics = "; ".join(
            f"{key}={_format_metric(val)}" for key, val in sorted(result.metrics.items())
        ) or "—"
        wall = f"{result.wall_time_s:.1f}s" if result.wall_time_s is not None else "—"
        seed = "—" if result.seed is None else str(result.seed)
        lines.append(f"| `{name}` | {seed} | {wall} | {metrics} |")
    return "\n".join(lines)


def update_markdown(path: str | Path, results: dict[str, ExperimentResult]) -> bool:
    """Replace the generated block in ``path``; returns True if changed.

    The file must already contain the BEGIN/END markers; everything
    between them is owned by this tool.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if BEGIN_MARK not in text or END_MARK not in text:
        raise SystemExit(
            f"{path} has no generated-values markers; add\n"
            f"{BEGIN_MARK}\n{END_MARK}\nwhere the table belongs"
        )
    head, rest = text.split(BEGIN_MARK, 1)
    _, tail = rest.split(END_MARK, 1)
    block = f"{BEGIN_MARK}\n{render_measured_table(results)}\n{END_MARK}"
    updated = head + block + tail
    if updated == text:
        return False
    path.write_text(updated, encoding="utf-8")
    return True


def compare_artifacts(
    dir_a: str | Path, dir_b: str | Path
) -> list[str]:
    """Differences between two artifact directories, as human-readable lines.

    Compares the deterministic content (headers, rows, metrics, seed) and
    ignores run metadata (wall time, worker, cache state).  Experiments
    present on only one side are reported too.
    """
    a, b = load_artifacts(dir_a), load_artifacts(dir_b)
    problems: list[str] = []
    for name in sorted(set(a) - set(b)):
        problems.append(f"{name}: only in {dir_a}")
    for name in sorted(set(b) - set(a)):
        problems.append(f"{name}: only in {dir_b}")
    for name in sorted(set(a) & set(b)):
        for field in ("headers", "rows", "metrics", "seed"):
            if getattr(a[name], field) != getattr(b[name], field):
                problems.append(f"{name}: {field} differ")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Regenerate measured-value tables / compare campaign artifacts.",
    )
    parser.add_argument("--json", metavar="DIR", help="artifact directory to read")
    parser.add_argument(
        "--write", metavar="FILE", default=None,
        help="markdown file whose generated block to update (e.g. EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("DIR_A", "DIR_B"), default=None,
        help="diff two artifact directories; non-zero exit on any difference",
    )
    args = parser.parse_args(argv)

    if args.compare:
        problems = compare_artifacts(*args.compare)
        for line in problems:
            print(f"MISMATCH {line}", file=sys.stderr)
        if not problems:
            print("artifacts identical")
        return 1 if problems else 0

    if not args.json:
        parser.error("--json DIR is required unless --compare is used")
    results = load_artifacts(args.json)
    if not results:
        print(f"no artifacts in {args.json}", file=sys.stderr)
        return 1
    if args.write:
        changed = update_markdown(args.write, results)
        print(f"{args.write}: {'updated' if changed else 'already current'} "
              f"({len(results)} experiments)")
    else:
        print(render_measured_table(results))
    return 0


if __name__ == "__main__":
    sys.exit(main())
