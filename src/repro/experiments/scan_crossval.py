"""scan-crossval — static scanner vs dynamic oracle agreement.

The registered, cached form of the scanner's soundness argument
(:mod:`repro.static.crossval`): the built-in regression corpus plus a
seeded batch of generated programs, every case replayed under every
mitigation through both the static scanner and the dynamic two-fill
oracle, summarized as the 2×2 agreement matrix per mitigation.

The experiment asserts nothing by itself — it *records*; the hard gates
live in ``tests/static/test_crossval.py`` and ``repro-scan crossval``
(exit 1 on violations).  But its cached artifact makes the agreement
matrix part of the repo's equivalence surface: any scanner change that
shifts a cell count breaks ``GOLDEN.json`` and must be justified.

Determinism: the on-disk corpus is deliberately excluded (an
experiment's result must be a function of its seed alone, and whatever
campaigns the developer ran locally must not leak into a cached
artifact); the built-in :data:`repro.fuzz.corpus.REGRESSION_ENTRIES`
are part of the source and therefore fair game.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.fuzz.harness import MITIGATIONS
from repro.static.crossval import AGREEMENT_CELLS, agreement_matrix, run_crossval

__all__ = ["run"]

#: Generated programs on top of the built-in regression corpus; each
#: contributes a fuzz-v1 and an oracle-v1 case per mitigation.
_BUDGET = 6


def run(seed: int = 902) -> ExperimentResult:
    report = run_crossval(
        corpus_dir=None,
        budget=_BUDGET,
        seed=seed,
        mitigations=MITIGATIONS,
    )
    result = ExperimentResult(
        experiment_id="scan-crossval",
        title="Static scanner vs dynamic two-fill oracle: agreement matrix",
        headers=[
            "mitigation", "cases", "both-positive", "static-only",
            "dynamic-only", "both-negative",
        ],
        paper_claim=(
            "a sound static over-approximation of the TABLE I predictors "
            "flags every program the dynamic oracle can observe leaking; "
            "disagreement only ever falls on the precision side"
        ),
    )
    for mitigation in MITIGATIONS:
        rows = [row for row in report.rows if row["mitigation"] == mitigation]
        matrix = agreement_matrix(rows)
        result.add_row(
            mitigation, len(rows),
            *(matrix[cell] for cell in AGREEMENT_CELLS),
        )
        for cell in AGREEMENT_CELLS:
            result.metrics[f"{mitigation}_{cell.replace('-', '_')}"] = matrix[cell]
    total = report.matrix()
    result.add_row(
        "total", len(report.rows),
        *(total[cell] for cell in AGREEMENT_CELLS),
    )
    result.metrics["cases"] = len(report.rows)
    result.metrics["soundness_violations"] = len(report.violations)
    result.metrics["sound"] = int(report.sound)
    result.add_note(
        f"case set: {report.described_sources()} — the 8 built-in "
        f"regression corpus entries plus {_BUDGET} seed-derived programs "
        "(fuzz-v1 + oracle-v1 each), every one scanned and "
        "oracle-executed under every mitigation"
    )
    result.add_note(
        "dynamic-only must be 0 (the soundness invariant); static-only "
        "is the expected precision gap of an over-approximate scanner — "
        "the predictor preconditions a static edge requires simply did "
        "not fire in this run's machines"
    )
    return result
