"""Content-addressed cache for experiment results.

A campaign re-run should not repeat work whose inputs have not changed.
Every experiment is a pure function of (driver, seed, platform model,
library version), so the cache key is the SHA-256 of exactly those
inputs, canonically serialized:

* **experiment name** — the registry key, which pins the driver;
* **seed** — the effective seed the driver ran with;
* **CpuModel** — every field of the platform config (a frozen dataclass;
  ``dataclasses.asdict`` recurses into the nested ``LatencyModel``), so
  editing a latency or queue size invalidates prior results;
* **package version** — ``repro.__version__``; code changes that matter
  are expected to ride a version bump (``--no-cache`` or
  :meth:`ResultCache.clear` covers local development in between).

Entries are the same JSON documents as the artifacts in ``results/``
(:mod:`repro.experiments.artifacts`), stored under
``.repro-cache/<key[:2]>/<key>.json`` and written atomically
(:func:`repro.runtime.atomic.atomic_write_json`), so a SIGKILL mid-store
can never leave a truncated entry.  A corrupt or schema-incompatible
entry behaves as a miss and is **quarantined** — moved to
``.repro-cache/quarantine/`` with a reason file and counted in
:attr:`ResultCache.quarantined` — never silently deleted and never an
error.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import asdict
from pathlib import Path

from repro.core.config import CpuModel, default_model
from repro.errors import ArtifactError
from repro.experiments.base import ExperimentResult
from repro.runtime.atomic import atomic_write_json
from repro.runtime.quarantine import QUARANTINE_DIR, quarantine

__all__ = ["ResultCache", "cache_key", "content_key", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"


def content_key(payload: dict) -> str:
    """SHA-256 of a JSON-serializable payload, canonically serialized.

    The shared content-addressing primitive: the experiment result cache,
    the fuzzing corpus (:mod:`repro.fuzz.corpus`) and findings artifacts
    all derive their filenames from this so identical inputs land at
    identical paths no matter which run produced them.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cache_key(
    name: str,
    seed: int | None,
    model: CpuModel | None = None,
    version: str | None = None,
) -> str:
    """Derive the content address for one experiment configuration."""
    from repro import __version__  # local import: repro/__init__ imports widely

    return content_key(
        {
            "experiment": name,
            "seed": seed,
            "model": asdict(model or default_model()),
            "version": version if version is not None else __version__,
        }
    )


class ResultCache:
    """Filesystem-backed result store keyed by :func:`cache_key`."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Corrupt entries moved to ``<root>/quarantine/`` by :meth:`get`;
        #: surfaced in the campaign summary and manifest.
        self.quarantined = 0

    def _entry(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> ExperimentResult | None:
        """Return the cached result for ``key``, or None on a miss.

        A hit is returned with ``cache_hit=True`` so downstream rendering
        and manifests can tell replayed results from fresh ones.  An
        entry that exists but cannot be decoded or validated is a miss
        too, but the evidence is preserved: the file moves to the
        quarantine directory and :attr:`quarantined` is bumped.
        """
        path = self._entry(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            data = json.loads(raw.decode("utf-8"))
            result = ExperimentResult.from_dict(data)
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                ArtifactError, OSError) as exc:
            if quarantine(self.root, path, f"cache entry {key}: {exc!r}"):
                self.quarantined += 1
            self.misses += 1
            return None
        self.hits += 1
        result.cache_hit = True
        return result

    def put(self, key: str, result: ExperimentResult) -> Path:
        """Store ``result`` under ``key`` atomically and durably."""
        stored = result.to_dict()
        stored["cache_hit"] = False  # the stamp is per-run, not part of content
        return atomic_write_json(self._entry(key), stored)

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(
            1 for path in self.root.glob("*/*.json")
            if path.parent.name != QUARANTINE_DIR
        )
