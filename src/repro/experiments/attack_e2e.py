"""E21/E22/E23 — the end-to-end exploitation results (Sections IV-D/V).

* **channel-capacity** — the covert-channel design space: symbol width,
  repetition coding and injected noise against both transports (the
  SSBP predictor-state lanes and the Flush+Reload cache lines), each
  point reporting raw symbol error rate, corrected byte error rate and
  goodput at the modeled clock.
* **stl-extraction** — the exploitation capstone: full secret
  extraction through the validated Spectre-STL chain, the same seeded
  campaign run under every mitigation.  ``none`` must recover every
  byte; ``ssbd``/``fence`` must measurably degrade recovery.
* **aslr-derand** — SPOILER-style derandomization: exact sub-page
  placement recovery via a known same-page reference routine, plus
  partial physical-base bits from the hash differences of neighbouring
  frames.
"""

from __future__ import annotations

from repro.attacks.aslr import AslrDerandomizer
from repro.attacks.capacity import CapacityConfig, measure_capacity
from repro.attacks.extraction import run_suite
from repro.cpu.machine import Machine
from repro.experiments.base import ExperimentResult

__all__ = ["run_capacity", "run_extraction", "run_aslr"]

#: The capacity sweep, as (channel, width, repeat, noise) points: both
#: transports at two widths, plus a noisy pair showing the repetition
#: code buying back the error rate.
_CAPACITY_POINTS = (
    ("cache", 2, 1, 0.0),
    ("cache", 4, 1, 0.0),
    ("stl", 1, 1, 0.0),
    ("stl", 2, 1, 0.0),
    ("cache", 2, 1, 0.08),
    ("cache", 2, 3, 0.08),
)


def run_capacity(seed: int = 713) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="channel-capacity",
        title="Covert-channel capacity and error rates",
        headers=[
            "channel", "width", "repeat", "noise",
            "raw sym err", "byte err", "goodput (b/s)",
        ],
        paper_claim=(
            "the predictors can be used to construct covert channels "
            "for data transmission (Vulnerability 4)"
        ),
    )
    clean_goodput: dict[str, float] = {}
    coded_recovered = uncoded_errors = None
    for channel, width, repeat, noise in _CAPACITY_POINTS:
        report = measure_capacity(
            CapacityConfig(
                channel=channel, width=width, repeat=repeat,
                noise=noise, payload_bytes=8, seed=seed,
            )
        )
        result.add_row(
            channel, width, repeat, f"{noise:g}",
            f"{report.raw_symbol_error_rate:.3f}",
            f"{report.corrected_byte_error_rate:.3f}",
            f"{report.goodput_bits_per_second:,.0f}",
        )
        if not noise and repeat == 1:
            clean_goodput[channel] = max(
                clean_goodput.get(channel, 0.0), report.goodput_bits_per_second
            )
        elif repeat == 1:
            uncoded_errors = report.corrected_byte_errors
        else:
            coded_recovered = report.corrected_byte_errors
    result.metrics["cache_goodput_bps"] = round(clean_goodput.get("cache", 0))
    result.metrics["stl_goodput_bps"] = round(clean_goodput.get("stl", 0))
    result.metrics["noisy_uncoded_byte_errors"] = uncoded_errors
    result.metrics["noisy_coded_byte_errors"] = coded_recovered
    result.add_note(
        "the stl transport crosses processes with no shared memory; the "
        "cache transport is faster but needs a shared read-only mapping"
    )
    return result


def run_extraction(seed: int = 2024) -> ExperimentResult:
    secret = bytes((index * 37 + 11) & 0xFF for index in range(16))
    reports = run_suite(secret, seed=seed)
    result = ExperimentResult(
        experiment_id="stl-extraction",
        title="Spectre-STL secret extraction per mitigation",
        headers=[
            "mitigation", "bytes recovered", "accuracy",
            "cycles/byte", "outcome",
        ],
        paper_claim=(
            "an unprivileged attacker leaks victim memory through the "
            "store-to-load predictors; SSBD and store fences close the "
            "channel (Sections V-B, VI-A)"
        ),
    )
    for report in reports:
        good = round(report.accuracy * len(secret))
        result.add_row(
            report.mitigation,
            f"{good}/{len(secret)}",
            f"{report.accuracy:.0%}",
            f"{report.cycles_per_byte:,.0f}",
            report.failure or "full recovery",
        )
        result.metrics[f"{report.mitigation}_accuracy"] = report.accuracy
        result.metrics[f"{report.mitigation}_cycles_per_byte"] = round(
            report.cycles_per_byte
        )
    result.add_note(
        "one campaign per mitigation on a fresh machine with the same "
        "seed; the mitigated campaigns' cycles are pure attacker waste"
    )
    return result


def run_aslr(seed: int = 4096) -> ExperimentResult:
    derandomizer = AslrDerandomizer(machine=Machine(seed=seed))
    report = derandomizer.recover()
    result = ExperimentResult(
        experiment_id="aslr-derand",
        title="ASLR derandomization from predictor collisions",
        headers=["quantity", "measured"],
        paper_claim=(
            "hash collisions reveal address bits of other allocations — "
            "SPOILER-style physical-address disclosure plus exact "
            "sub-page placement recovery (Section V-D)"
        ),
    )
    sub = report.recovered_sub_offset
    result.add_row(
        "sub-page placement recovered",
        f"{sub:#x} ({'exact' if report.sub_page_recovered else 'WRONG'})"
        if sub is not None else "no",
    )
    result.add_row(
        "physical window candidates",
        f"{report.candidates_remaining} of {1 << report.window_bits}",
    )
    result.add_row(
        "physical bits recovered", f"{report.physical_bits_recovered:.1f}"
    )
    result.add_row("probes", report.probes)
    result.add_row("victim invocations", report.victim_invocations)
    result.add_row("cycles", f"{report.cycles:,}")
    result.metrics["sub_page_recovered"] = int(report.sub_page_recovered)
    result.metrics["physical_bits_recovered"] = round(
        report.physical_bits_recovered, 2
    )
    result.metrics["probes"] = report.probes
    result.add_note(
        "all probes are attacker-local loads; the victim only ever runs "
        "its own routines on attacker-chosen arguments"
    )
    return result
