"""E5 — TABLE II: which IPA selects which counter?

The paper runs annotated stld sequences (:math:`n_x^y` — load hash x,
store hash y) and concludes that C0/C1/C2 are selected by *both* hashed
IPAs (they live in PSFP) while C3/C4 are selected by the load's hash
alone (they live in SSBP).  We reproduce the decisive probes:

* after training the base pair, probes with a different load *or* store
  hash see fresh C0/C1/C2 (type H, no PSF);
* a charged C3 is visible through any store hash sharing the load hash
  (type F), and invisible through a different load hash;
* the TABLE II C4 row verbatim: three out-of-place G events (different
  store hash) charge the base load's C3 — ``phi(35n) = (15F, 20H)``.
"""

from __future__ import annotations

from repro.core.exec_types import ExecType
from repro.cpu.machine import Machine
from repro.experiments.base import ExperimentResult
from repro.revng.sequences import format_types
from repro.revng.stld import StldHarness

__all__ = ["run"]


def run(seed: int = 2024) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table2",
        title="Counter organization: IPA dependence of C0..C4",
        headers=["counter", "probe", "observed", "conclusion", "matches paper"],
        paper_claim=(
            "C0, C1, C2 selected by store AND load IPA (PSFP); "
            "C3, C4 by the load IPA only (SSBP)"
        ),
    )

    # ------------------------------------------------------- C0/C1/C2
    harness = StldHarness(machine=Machine(seed=seed))
    harness.run_events("7n, a")          # trains the (0,0) pair: C0=4
    diff_store = harness.run_events("4n:0:1")
    diff_load = harness.run_events("4n:1:0")
    both_fresh = all(t is ExecType.H for t in diff_store + diff_load)
    result.add_row(
        "C0/C1/C2",
        "n with different store or load hash",
        f"{format_types(diff_store)} | {format_types(diff_load)}",
        "selected by both IPAs" if both_fresh else "shared",
        both_fresh,
    )
    same_pair = harness.run_events("4n")
    trained_visible = same_pair[0] is ExecType.E
    result.add_row(
        "C0/C1/C2",
        "n with the trained pair",
        format_types(same_pair),
        "trained state visible" if trained_visible else "lost",
        trained_visible,
    )

    # ------------------------------------------------------------- C3
    harness = StldHarness(machine=Machine(seed=seed + 1))
    harness.run_events("7n, a, 7n, a, 7n, a")   # C3 = 15 at load hash 0
    via_other_store = harness.run_events("6n:0:2")
    shared_by_load = all(t is ExecType.F for t in via_other_store)
    result.add_row(
        "C3",
        "n with same load, different store hash",
        format_types(via_other_store),
        "selected by load IPA only" if shared_by_load else "pair-selected",
        shared_by_load,
    )
    via_other_load = harness.run_events("4n:2:0")
    invisible_elsewhere = all(t is ExecType.H for t in via_other_load)
    result.add_row(
        "C3",
        "n with different load hash",
        format_types(via_other_load),
        "not shared across loads" if invisible_elsewhere else "global",
        invisible_elsewhere,
    )

    # ------------------------------------------------------------- C4
    harness = StldHarness(machine=Machine(seed=seed + 2))
    for store_id in (1, 2):
        harness.run_events(f"7n:0:{store_id}, a:0:{store_id}")
        harness.run_events("39n")
    harness.run_events("7n:0:3, a:0:3")  # third G: C4 saturates, C3 <- 15
    tail = harness.run_events("35n")
    published = "15F, 20H"
    got = format_types(tail)
    result.add_row(
        "C4",
        "three out-of-place Gs, then phi(35n)",
        got,
        "accumulates per load IPA" if got == published else "unexpected",
        got == published,
    )

    result.metrics["psfp_counters"] = "C0,C1,C2"
    result.metrics["ssbp_counters"] = "C3,C4"
    result.add_note(
        "probes use ground-truth pipeline events; the timing classifier "
        "reproduces them at >99.8% (table1 experiment)"
    )
    return result
