"""Shared machinery for the selection/isolation experiments (E3, E7).

A :class:`SelectionObserver` keeps one self-calibrated
:class:`repro.attacks.runtime.AttackerStld` per process, so any stld
program mapped in that process — including another process's code seen
through fork/COW or shared mmap — can be timed and classified.  All
conclusions rest on timing classes, as in the paper.
"""

from __future__ import annotations

from repro.attacks.runtime import AttackerStld
from repro.core.exec_types import TimingClass
from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.osm.process import Process
from repro.revng.stld import build_stld

__all__ = ["SelectionObserver"]

_STALL = (TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD)


class SelectionObserver:
    """Per-process timing observers over shared stld code."""

    def __init__(self, machine: Machine, thread_id: int = 0) -> None:
        self.machine = machine
        self.thread_id = thread_id
        self.template = build_stld()
        self._observers: dict[int, AttackerStld] = {}

    def observer_for(self, process: Process) -> AttackerStld:
        observer = self._observers.get(process.pid)
        if observer is None:
            observer = AttackerStld(
                self.machine, process, thread_id=self.thread_id, slide_pages=2
            )
            self._observers[process.pid] = observer
        return observer

    # ------------------------------------------------------------------
    # Site management
    # ------------------------------------------------------------------
    def place_site(self, process: Process, iva: int | None = None) -> Program:
        """Place a fresh stld in ``process`` (at ``iva`` if given)."""
        if iva is None:
            return self.machine.load_program(process, self.template)
        return self.machine.place_program(process, self.template, iva)

    @staticmethod
    def view(program: Program, iva: int) -> Program:
        """The same instructions seen at another virtual address."""
        return program.relocate(iva)

    # ------------------------------------------------------------------
    # SSBP probes
    # ------------------------------------------------------------------
    def charge(self, process: Process, program: Program) -> None:
        self.observer_for(process).charge_c3(program)

    def drain(self, process: Process, program: Program) -> None:
        self.observer_for(process).drain_c3(program)

    def reads_charged(self, process: Process, program: Program) -> bool:
        """Does a non-aliasing probe through this view stall (C3 > 0)?"""
        observed = self.observer_for(process).observe(program, aliasing=False)
        return observed in _STALL

    # ------------------------------------------------------------------
    # PSFP probes
    # ------------------------------------------------------------------
    def train_psf(self, process: Process, program: Program) -> bool:
        return self.observer_for(process).train_psf(program)

    def psf_alive(self, process: Process, program: Program) -> bool:
        """Does an aliasing probe through this view still forward
        predictively (type C)?  Distinguishes a live PSFP entry from a
        flushed one (which stalls via the surviving C3, or G's)."""
        observed = self.observer_for(process).observe(program, aliasing=True)
        return observed is TimingClass.PSF_FORWARD
