"""Experiment drivers: one module per paper table/figure (DESIGN.md E1-E17).

Run them via the ``repro-experiments`` CLI
(:mod:`repro.experiments.runner`) or import the modules directly; every
driver returns an :class:`repro.experiments.base.ExperimentResult`.
"""

from repro.experiments.base import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
