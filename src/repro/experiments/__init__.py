"""Experiment drivers: one module per paper table/figure (DESIGN.md E1-E17).

Run them via the ``repro-experiments`` CLI — a parallel, cached campaign
engine (:mod:`repro.experiments.runner`) — or import the modules
directly; every driver takes an explicit ``seed`` and returns an
:class:`repro.experiments.base.ExperimentResult`.  Results serialize to
JSON artifacts (:mod:`repro.experiments.artifacts`), are cached
content-addressed (:mod:`repro.experiments.cache`), and feed the
measured-values tables (:mod:`repro.experiments.report`).  The catalog
of all 21 experiments is docs/experiments.md.
"""

from repro.experiments.base import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    format_table,
)

__all__ = ["ExperimentResult", "format_table", "RESULT_SCHEMA_VERSION"]
