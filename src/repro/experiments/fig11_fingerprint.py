"""E14 — Fig 11: fingerprinting CNN models through SSBP.

Collects C3-distribution fingerprints for the six models, reports each
model's headline bin frequencies (Fig 11's panels), and scores an SVM on
held-out samples (the paper reports > 95.5%).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.svm import OneVsRestSvm, train_test_split
from repro.attacks.fingerprint import collect_dataset
from repro.experiments.base import ExperimentResult
from repro.workloads.cnn import CNN_MODELS

__all__ = ["run"]


def run(
    samples_per_model: int = 4,
    rounds: int = 6,
    seed: int = 7,
) -> ExperimentResult:
    features, labels, names = collect_dataset(
        CNN_MODELS, samples_per_model=samples_per_model, rounds=rounds, seed=seed
    )
    result = ExperimentResult(
        experiment_id="fig11",
        title="Fingerprinting CNN models via SSBP C3 distributions",
        headers=["model", "top C3 value", "freq", "freq @ value 5"],
        paper_claim=(
            "frequency vectors distinguish 6 CNN models; SVM accuracy "
            "> 95.5% (value-5 frequency alone separates several models)"
        ),
    )
    for label, name in enumerate(names):
        mean_vector = features[labels == label].mean(axis=0)
        top_bin = int(np.argmax(mean_vector))
        result.add_row(
            name,
            top_bin + 1,
            f"{mean_vector[top_bin]:.2f}",
            f"{mean_vector[4]:.2f}",
        )

    train_x, train_y, test_x, test_y = train_test_split(
        features, labels, test_fraction=0.25, seed=seed
    )
    classifier = OneVsRestSvm(epochs=150).fit(train_x, train_y)
    accuracy = classifier.score(test_x, test_y)
    result.add_row("SVM held-out accuracy", "-", f"{accuracy:.2%}", "-")
    result.metrics["svm_accuracy"] = round(accuracy, 4)
    result.metrics["models"] = len(names)
    result.add_note(
        f"{samples_per_model} fingerprints per model, {rounds} probe "
        "rounds each, fresh physical layout per fingerprint"
    )
    return result
