"""E9/E10 — Sections IV-C and IV-D (Figs 8 and 9): transient behaviour.

Fig 8 — both predictors open transient windows with attacker-influenced
values: a PSFP misprediction forwards the store's data (0xdd) to a load
of a different address, and an SSBP misprediction lets the load read the
*stale* memory value (0xcc) under a pending store.  The wrongly loaded
value is consumed by dependent code (observable via a surviving cache
touch) before the rollback.

Fig 9 — predictor updates performed inside a transient window — whether
opened by a branch misprediction, a faulting load, or a memory
misprediction — survive the squash (Vulnerability 4).
"""

from __future__ import annotations

from repro.core.exec_types import ExecType
from repro.cpu.isa import (
    Alu,
    Halt,
    ImulImm,
    Jz,
    Label,
    Load,
    Mov,
    MovImm,
    Program,
    Store,
)
from repro.cpu.machine import Machine
from repro.experiments.base import ExperimentResult
from repro.mem.hierarchy import CacheLevel

__all__ = ["run"]


def _delayed_stld(buf, store_off, load_off, probe, agen=20):
    """store [buf+store_off] = 0xDD (delayed); load [buf+load_off];
    transiently encode the loaded value into probe[value * 4096]."""
    instructions = [MovImm("sbase", buf + store_off), Mov("t", "sbase")]
    instructions += [ImulImm("t", "t", 1)] * agen
    instructions += [
        MovImm("data", 0xDD),
        Store(base="t", src="data", width=8),
        MovImm("lbase", buf + load_off),
        Load("out", base="lbase", width=8),
        MovImm("pbase", probe),
        ImulImm("scaled", "out", 4096),
        Alu("paddr", "pbase", "scaled", "add"),
        Load("leak", base="paddr"),
        Halt(),
    ]
    return Program(instructions, name="fig8")


def _touched(machine, process, vaddr) -> bool:
    paddr = machine.kernel.translate(process, vaddr)
    return machine.core.hierarchy.probe_level(paddr) is not CacheLevel.MEMORY


def _fig8_psfp(result: ExperimentResult, seed: int) -> None:
    """PSF misprediction: 0xdd forwarded to a load of a different address."""
    machine = Machine(seed=seed)
    process = machine.kernel.create_process("fig8-psfp")
    buf = machine.kernel.map_anonymous(process, pages=1)
    probe = machine.kernel.map_anonymous(process, pages=257)
    machine.kernel.write(process, buf + 64, (0xCC).to_bytes(8, "little"))
    # PSFP is pair-selected, so training and the attack must run the
    # SAME instructions: one program, addresses supplied via registers.
    trainer = machine.load_program(
        process,
        Program(
            [
                Mov("sbase", "store_target"),
                Mov("t", "sbase"),
                *[ImulImm("t", "t", 1) for _ in range(20)],
                MovImm("data", 0xDD),
                Store(base="t", src="data", width=8),
                Load("out", base="load_target"),
                MovImm("pbase", probe),
                ImulImm("scaled", "out", 4096),
                Alu("paddr", "pbase", "scaled", "add"),
                Load("leak", base="paddr"),
                Halt(),
            ],
            name="fig8-psfp",
        ),
    )
    for _ in range(6):  # G, then aliasing runs until PSF-enabled
        machine.run(
            process, trainer, {"store_target": buf, "load_target": buf}
        )
    machine.kernel.write(process, buf + 64, (0xCC).to_bytes(8, "little"))
    result_run = machine.run(
        process, trainer, {"store_target": buf + 64, "load_target": buf}
    )
    forwarded = _touched(machine, process, probe + 0xDD * 4096)
    types = result_run.exec_types()
    event = types[0] if types else None
    result.add_row(
        "PSFP misprediction (Fig 8, 4a)",
        "0xdd (the store's data) loaded transiently",
        forwarded and event is ExecType.D,
    )


def _fig8_ssbp(result: ExperimentResult, seed: int) -> None:
    """Bypass misprediction: the stale 0xcc read under the pending store."""
    machine = Machine(seed=seed)
    process = machine.kernel.create_process("fig8-ssbp")
    buf = machine.kernel.map_anonymous(process, pages=1)
    probe = machine.kernel.map_anonymous(process, pages=257)
    machine.kernel.write(process, buf, (0xCC).to_bytes(8, "little"))
    program = machine.load_program(
        process, _delayed_stld(buf, store_off=0, load_off=0, probe=probe)
    )
    run = machine.run(process, program)
    stale_touched = _touched(machine, process, probe + 0xCC * 4096)
    g_event = run.has_exec_type(ExecType.G)
    result.add_row(
        "SSBP misprediction (Fig 8, 4b)",
        "0xcc (the stale memory value) loaded transiently",
        stale_touched and g_event and run.rollbacks == 1,
    )


def _fig9_windows(result: ExperimentResult, seed: int) -> None:
    """Predictor updates inside each window type survive the squash."""
    # --- branch misprediction window
    machine = Machine(seed=seed)
    process = machine.kernel.create_process("fig9-branch")
    buf = machine.kernel.map_anonymous(process, pages=1)
    instructions = [Mov("cond", "seed")]
    instructions += [ImulImm("cond", "cond", 1)] * 30
    instructions += [Jz("cond", "path"), Halt(), Label("path"),
                     MovImm("sbase", buf), Mov("t", "sbase")]
    instructions += [ImulImm("t", "t", 1)] * 20
    instructions += [
        MovImm("data", 1),
        Store(base="t", src="data", width=8),
        MovImm("lbase", buf),
        Alu("laddr", "lbase", "poff", "add"),
        Load("out", base="laddr", width=8),
        Halt(),
    ]
    program = machine.load_program(process, Program(instructions, name="b"))
    for _ in range(4):
        machine.run(process, program, {"seed": 0, "poff": 64})
    unit = machine.core.thread(0).unit
    occupancy_before = unit.ssbp.occupancy
    run = machine.run(process, program, {"seed": 1, "poff": 0})
    branch_ok = (
        run.rollbacks >= 1
        and run.has_exec_type(ExecType.G)
        and unit.ssbp.occupancy > occupancy_before
    )
    result.add_row(
        "branch-mispredict window (Fig 9)",
        "squashed stld still trained SSBP",
        branch_ok,
    )

    # --- faulting-load window
    machine = Machine(seed=seed + 1)
    process = machine.kernel.create_process("fig9-fault")
    buf = machine.kernel.map_anonymous(process, pages=1)
    instructions = [MovImm("bad", 0xDEAD0000), Load("x", base="bad"),
                    MovImm("sbase", buf), Mov("t", "sbase")]
    instructions += [ImulImm("t", "t", 1)] * 10
    instructions += [
        MovImm("data", 1),
        Store(base="t", src="data", width=8),
        Load("out", base="sbase", width=8),
        Halt(),
        Label("fault_handler"),
        Halt(),
    ]
    program = machine.load_program(process, Program(instructions, name="f"))
    unit = machine.core.thread(0).unit
    run = machine.run(process, program)
    fault_ok = (
        run.rollbacks >= 1
        and run.has_exec_type(ExecType.G)
        and unit.ssbp.occupancy >= 1
    )
    result.add_row(
        "faulting-load window (Fig 9)",
        "squashed stld still trained SSBP",
        fault_ok,
    )

    # --- memory (bypass) misprediction window
    machine = Machine(seed=seed + 2)
    process = machine.kernel.create_process("fig9-mem")
    buf = machine.kernel.map_anonymous(process, pages=1)
    instructions = [MovImm("sbase", buf), Mov("t", "sbase")]
    instructions += [ImulImm("t", "t", 1)] * 30
    instructions += [
        MovImm("data", 1),
        Store(base="t", src="data", width=8),
        Load("first", base="sbase", width=8),    # G: opens the window
        Load("second", base="sbase", width=8),   # nested pair, squashed
        Halt(),
    ]
    program = machine.load_program(process, Program(instructions, name="m"))
    run = machine.run(process, program)
    memory_ok = (run.rollbacks == 1 and len(run.events) >= 2
                 and run.has_exec_type(ExecType.G))
    result.add_row(
        "memory-mispredict window (Fig 9)",
        "nested pair's update survived the squash",
        bool(memory_ok),
    )


def run(seed: int = 8) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="sec4-transient",
        title="Transient execution (Fig 8) and transient updates (Fig 9)",
        headers=["window", "observation", "confirmed"],
        paper_claim=(
            "both predictors open transient windows with incorrect loaded "
            "values (Vuln 3); predictor updates in any window survive the "
            "rollback (Vuln 4)"
        ),
    )
    _fig8_psfp(result, seed)
    _fig8_ssbp(result, seed + 1)
    _fig9_windows(result, seed + 2)
    result.metrics["vulnerability_3_confirmed"] = str(
        all(row[2] for row in result.rows[:2])
    )
    result.metrics["vulnerability_4_confirmed"] = str(
        all(row[2] for row in result.rows[2:])
    )
    return result
