"""E8 — Fig 7 / Vulnerability 2: how hard is it to find collisions?

Left half: the distribution of code-sliding attempts until an SSBP
collision.  Every page contains exactly one colliding offset, so the
attempt count is uniform over the page — the paper fits a Gaussian with
mean ~2200 over its (binned) histogram; we report mean and the 4096
upper bound.

Right half: PSFP collisions require the attacker's store-load IPA
distance to equal the victim's.  With the equal distance, a usable
candidate appears within a handful of pages (the paper reports >90%
within 16 pages); with a different distance the store tags can never
line up.
"""

from __future__ import annotations

from repro.attacks.collision import SsbpCollisionFinder
from repro.attacks.runtime import AttackerStld
from repro.analysis.stats import fit_gaussian
from repro.core.hashfn import ipa_hash
from repro.cpu.machine import Machine
from repro.errors import CollisionNotFound
from repro.experiments.base import ExperimentResult
from repro.osm.address_space import Perm
from repro.revng.stld import build_stld, load_instruction_index, store_instruction_index

__all__ = ["run", "ssbp_attempt_samples", "psfp_candidate_rate"]


def ssbp_attempt_samples(trials: int = 12, seed: int = 900) -> list[int]:
    """Attempt counts over independent machines (fresh physical layouts)."""
    samples = []
    for trial in range(trials):
        machine = Machine(seed=seed + trial)
        process = machine.kernel.create_process("attacker")
        attacker = AttackerStld(machine, process, slide_pages=2)
        target_region = machine.kernel.map_anonymous(
            process, pages=2, perms=Perm.RX, kind="code"
        )
        target = attacker.template.relocate(target_region + 64)
        finder = SsbpCollisionFinder(
            attacker, lambda: attacker.charge_c3(target)
        )
        samples.append(finder.find().attempts)
    return samples


#: Distance shifts (in bytes) probed for the "different distance" case.
UNEQUAL_SHIFTS = (1, 2, 4, 60)


def psfp_candidate_rate(
    trials: int = 8, pages: int = 16, seed: int = 300
) -> tuple[float, float]:
    """(equal-distance rate, mean different-distance rate): fraction of
    trials where some load-collision candidate also matches the store tag
    within ``pages`` pages.  Store-tag match is checked with the
    analyst's oracle (the attack validates it by leaking a known byte).

    The different-distance rate averages over several shifts: the linked
    subtraction geometry leaves a few special shifts workable, but most
    are impossible — the paper's "may not be found" (Fig 7, right).
    """
    template = build_stld()
    load_index = load_instruction_index(template)
    store_index = store_instruction_index(template)
    equal_hits = 0
    unequal_hits = 0
    unequal_checks = 0
    for trial in range(trials):
        machine = Machine(seed=seed + trial)
        process = machine.kernel.create_process("x")
        target_region = machine.kernel.map_anonymous(
            process, pages=2, perms=Perm.RX, kind="code"
        )
        victim = template.relocate(target_region + 128)
        space = process.address_space
        victim_load_hash = ipa_hash(space.translate_nofault(victim.iva(load_index)))
        victim_store_hash = ipa_hash(space.translate_nofault(victim.iva(store_index)))

        slide = machine.kernel.map_anonymous(
            process, pages=pages, perms=Perm.RX, kind="code"
        )

        def any_candidate(distance_shift: int) -> bool:
            limit = slide + pages * 4096 - template.byte_size
            for iva in range(slide, limit):
                candidate = template.relocate(iva)
                load_ipa = space.translate_nofault(candidate.iva(load_index))
                if ipa_hash(load_ipa) != victim_load_hash:
                    continue
                store_ipa = space.translate_nofault(
                    candidate.iva(store_index) - distance_shift
                )
                if store_ipa is not None and ipa_hash(store_ipa) == victim_store_hash:
                    return True
            return False

        equal_hits += any_candidate(distance_shift=0)
        for shift in UNEQUAL_SHIFTS:
            unequal_hits += any_candidate(distance_shift=shift)
            unequal_checks += 1
    return equal_hits / trials, unequal_hits / unequal_checks


def run(trials: int = 12, seed: int = 900) -> ExperimentResult:
    samples = ssbp_attempt_samples(trials=trials, seed=seed)
    fit = fit_gaussian([float(s) for s in samples])
    equal_rate, unequal_rate = psfp_candidate_rate()

    result = ExperimentResult(
        experiment_id="fig7",
        title="Collision finding for SSBP and PSFP",
        headers=["quantity", "measured", "paper"],
        paper_claim=(
            "SSBP collisions need at most 4096 attempts (mean ~2200); "
            "PSFP collisions are deterministic only with equal IPA distance"
        ),
    )
    result.add_row("SSBP attempts (mean)", round(fit.mu, 1), "~2200")
    result.add_row("SSBP attempts (max observed)", max(samples), "<= 4096")
    result.add_row(
        "PSFP candidate within 16 pages (equal distance)",
        f"{equal_rate:.0%}", "> 90%",
    )
    result.add_row(
        "PSFP candidate within 16 pages (different distance)",
        f"{unequal_rate:.0%}", "may not be found",
    )
    result.metrics["ssbp_mean_attempts"] = round(fit.mu, 1)
    result.metrics["ssbp_sigma"] = round(fit.sigma, 1)
    result.metrics["psfp_equal_distance_rate"] = equal_rate
    result.metrics["psfp_unequal_distance_rate"] = unequal_rate
    result.add_note(
        "attempt counts are uniform within a page (one colliding offset "
        "per page); the paper's Gaussian arises from binning — we report "
        "the raw moments"
    )
    return result
