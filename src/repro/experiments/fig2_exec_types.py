"""E1 — Fig 2: execution-time levels and PMC attribution of types A--H.

Runs the paper's probe sequence ``(40n, 40a, 40n, 40a)`` on the stld
microbenchmark, classifies each invocation by time, and reports the mean
measured cycles per execution type alongside the reference PMC profile
(regenerating both halves of Fig 2).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.counters import CounterState
from repro.core.exec_types import PMC_PROFILE, TIMING_CLASS, ExecType
from repro.core.state_machine import run_sequence as model_run
from repro.cpu.pmc import PmcEvent
from repro.experiments.base import ExperimentResult
from repro.revng.sequences import parse, to_bools
from repro.revng.state_infer import refine_types
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier

__all__ = ["run"]

_SEQUENCE = "40n, 40a, 40n, 40a"


def run(seed: int = 2024) -> ExperimentResult:
    harness = StldHarness()
    classifier = TimingClassifier(harness)
    classifier.calibrate()

    inputs = to_bools(_SEQUENCE)
    tokens = parse(_SEQUENCE)
    cycles: list[int] = []
    pmc_deltas: list[dict[str, int]] = []
    for token in tokens:
        measured, delta = harness.run_token_with_pmc(token)
        cycles.append(measured)
        pmc_deltas.append(delta)
    observed_classes = classifier.classify_all(cycles)
    observed_types = refine_types(observed_classes, inputs, CounterState())
    expected_types, _ = model_run(CounterState(), inputs)

    per_type_cycles: dict[ExecType, list[int]] = defaultdict(list)
    per_type_pmc: dict[ExecType, list[dict[str, int]]] = defaultdict(list)
    for exec_type, measured, delta in zip(observed_types, cycles, pmc_deltas):
        per_type_cycles[exec_type].append(measured)
        per_type_pmc[exec_type].append(delta)

    result = ExperimentResult(
        experiment_id="fig2",
        title="Execution time and PMC attribution of the 8 types",
        headers=[
            "type", "n", "mean cycles", "timing class",
            "stall tok*", "stlf*", "ld disp*", "rollback*", "ref profile (Fig 2 table)",
        ],
        paper_claim=(
            "six timing levels resolve into 8 types; rollback types "
            "(D, G) exceed every other level; PMC events attribute them"
        ),
    )

    def mean_event(exec_type: ExecType, event: str) -> str:
        deltas = per_type_pmc.get(exec_type, [])
        if not deltas:
            return "-"
        return f"{sum(d[event] for d in deltas) / len(deltas):.1f}"

    for exec_type in ExecType:
        samples = per_type_cycles.get(exec_type, [])
        profile = PMC_PROFILE[exec_type]
        mean = round(sum(samples) / len(samples), 1) if samples else "-"
        result.add_row(
            exec_type.value,
            len(samples),
            mean,
            TIMING_CLASS[exec_type].name,
            mean_event(exec_type, PmcEvent.SQ_STALL_TOKENS),
            mean_event(exec_type, PmcEvent.STLF),
            mean_event(exec_type, PmcEvent.LD_DISPATCH),
            mean_event(exec_type, PmcEvent.ROLLBACK),
            f"{profile.sq_stall_tokens}/{profile.store_to_load_forward}"
            f"/{profile.ld_dispatch}/{profile.l1_itlb_hits_4k}/{profile.retired_ops}",
        )

    # The qualitative PMC attributions of Fig 2, checked on measurements:
    def type_mean(exec_type: ExecType, event: str) -> float:
        deltas = per_type_pmc.get(exec_type, [])
        return sum(d[event] for d in deltas) / len(deltas) if deltas else 0.0

    stall_attribution = all(
        type_mean(t, PmcEvent.SQ_STALL_TOKENS) > 0
        for t in (ExecType.A, ExecType.E)
        if per_type_pmc.get(t)
    ) and type_mean(ExecType.H, PmcEvent.SQ_STALL_TOKENS) == 0
    rollback_attribution = (
        type_mean(ExecType.G, PmcEvent.ROLLBACK) > 0
        and type_mean(ExecType.H, PmcEvent.ROLLBACK) == 0
    )
    forward_attribution = (
        type_mean(ExecType.A, PmcEvent.STLF)
        > type_mean(ExecType.H, PmcEvent.STLF)
        if per_type_pmc.get(ExecType.A)
        else True
    )
    result.metrics["pmc_stall_attribution"] = str(bool(stall_attribution))
    result.metrics["pmc_rollback_attribution"] = str(bool(rollback_attribution))
    result.metrics["pmc_forward_attribution"] = str(bool(forward_attribution))

    agreement = sum(
        o is e for o, e in zip(observed_types, expected_types)
    ) / len(expected_types)
    result.metrics["type_agreement_with_model"] = round(agreement, 4)
    means = {
        t: sum(v) / len(v) for t, v in per_type_cycles.items() if v
    }
    rollback_floor = min(
        (m for t, m in means.items() if t in (ExecType.D, ExecType.G)),
        default=0,
    )
    other_ceiling = max(
        (m for t, m in means.items() if t not in (ExecType.D, ExecType.G)),
        default=0,
    )
    result.metrics["rollback_slower_than_everything"] = str(
        rollback_floor > other_ceiling
    )
    result.add_note(
        "starred PMC columns are per-invocation deltas measured "
        "organically by the pipeline; the 'ref profile' column is the "
        "paper's Fig 2 table (stall/stlf/ld/itlb/retired), absolute "
        "values of which include the authors' harness overheads."
    )
    return result
