"""Unit tests for the L1/L2/L3 hierarchy and Flush+Reload primitives."""

from repro.core.config import LatencyModel
from repro.mem.hierarchy import CacheLevel, MemoryHierarchy


class TestLoadPath:
    def test_cold_load_from_memory(self):
        hierarchy = MemoryHierarchy()
        latency, level = hierarchy.load(0x1000)
        assert level is CacheLevel.MEMORY
        assert latency == hierarchy.latency.memory

    def test_warm_load_hits_l1(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x1000)
        latency, level = hierarchy.load(0x1000)
        assert level is CacheLevel.L1
        assert latency == hierarchy.latency.l1_hit

    def test_fill_is_inclusive(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x1000)
        assert hierarchy.l2.contains(0x1000)
        assert hierarchy.l3.contains(0x1000)

    def test_l2_hit_after_l1_flush(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x1000)
        hierarchy.l1.flush_line(0x1000)
        latency, level = hierarchy.load(0x1000)
        assert level is CacheLevel.L2
        assert latency == hierarchy.latency.l2_hit

    def test_store_allocates(self):
        hierarchy = MemoryHierarchy()
        hierarchy.store(0x2000)
        assert hierarchy.probe_level(0x2000) is CacheLevel.L1


class TestFlushReloadPrimitives:
    def test_clflush_removes_from_all_levels(self):
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x3000)
        hierarchy.clflush(0x3000)
        assert hierarchy.probe_level(0x3000) is CacheLevel.MEMORY

    def test_probe_latency_nondestructive(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.probe_latency(0x4000) == hierarchy.latency.memory
        # The probe must not have filled the line.
        assert hierarchy.probe_level(0x4000) is CacheLevel.MEMORY

    def test_probe_latency_distinguishes_hit_from_miss(self):
        """The property Flush+Reload relies on: a cached reload is fast."""
        hierarchy = MemoryHierarchy()
        hierarchy.load(0x5000)
        hit = hierarchy.probe_latency(0x5000)
        miss = hierarchy.probe_latency(0x6000)
        assert hit < miss / 10

    def test_flush_all(self):
        hierarchy = MemoryHierarchy()
        for addr in range(0, 0x10000, 64):
            hierarchy.load(addr)
        hierarchy.flush_all()
        assert hierarchy.l1.occupancy == 0
        assert hierarchy.probe_level(0) is CacheLevel.MEMORY


class TestCustomLatency:
    def test_latencies_flow_from_model(self):
        latency = LatencyModel(l1_hit=2, l2_hit=10, l3_hit=30, memory=99)
        hierarchy = MemoryHierarchy(latency)
        assert hierarchy.load(0)[0] == 99
        assert hierarchy.load(0)[0] == 2
