"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigError
from repro.mem.cache import Cache


def small_cache(ways: int = 2, sets: int = 4, line: int = 64) -> Cache:
    return Cache("test", size_bytes=ways * sets * line, ways=ways, line_size=line)


class TestGeometry:
    def test_set_count(self):
        assert small_cache(ways=2, sets=4).sets == 4

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            Cache("bad", size_bytes=3 * 64 * 2, ways=2)

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(ConfigError):
            Cache("bad", size_bytes=1024, ways=2, line_size=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigError):
            Cache("bad", size_bytes=1000, ways=2, line_size=64)


class TestAccess:
    def test_first_access_misses(self):
        cache = small_cache()
        assert cache.access(0x40) is False

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.access(0x40) is True

    def test_same_line_different_bytes_hit(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.access(0x7F) is True

    def test_adjacent_lines_are_distinct(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.access(0x80) is False

    def test_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.accesses == 3
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_stats_reset(self):
        cache = small_cache()
        cache.access(0)
        cache.stats.reset()
        assert cache.stats.accesses == 0


class TestEviction:
    def test_lru_eviction_within_set(self):
        cache = small_cache(ways=2, sets=4)
        stride = 4 * 64  # same set, different tags
        cache.access(0 * stride)
        cache.access(1 * stride)
        cache.access(2 * stride)  # evicts the first
        assert not cache.contains(0 * stride)
        assert cache.contains(1 * stride)
        assert cache.contains(2 * stride)
        assert cache.stats.evictions == 1

    def test_touch_refreshes_lru(self):
        cache = small_cache(ways=2, sets=4)
        stride = 4 * 64
        cache.access(0 * stride)
        cache.access(1 * stride)
        cache.access(0 * stride)  # refresh
        cache.access(2 * stride)  # evicts 1, not 0
        assert cache.contains(0)
        assert not cache.contains(1 * stride)

    def test_different_sets_do_not_interfere(self):
        cache = small_cache(ways=1, sets=4)
        cache.access(0 * 64)
        cache.access(1 * 64)
        assert cache.contains(0)
        assert cache.contains(64)


class TestFlush:
    def test_flush_line(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.flush_line(0x40) is True
        assert not cache.contains(0x40)

    def test_flush_absent_line(self):
        assert small_cache().flush_line(0x40) is False

    def test_flush_all(self):
        cache = small_cache()
        for i in range(8):
            cache.access(i * 64)
        cache.flush_all()
        assert cache.occupancy == 0

    def test_contains_does_not_touch_stats(self):
        cache = small_cache()
        cache.access(0)
        before = cache.stats.accesses
        cache.contains(0)
        assert cache.stats.accesses == before
