"""Unit tests for the store queue."""

import pytest

from repro.errors import SimulationLimitExceeded
from repro.mem.physical import PhysicalMemory
from repro.mem.store_queue import StoreEntry, StoreQueue


def entry(seq, paddr, data=b"\xAA", addr_ready=0, data_ready=0, ipa=0x1000):
    return StoreEntry(
        seq=seq,
        paddr=paddr,
        size=len(data),
        data=data,
        addr_ready=addr_ready,
        data_ready=data_ready,
        store_ipa=ipa,
    )


class TestPushAndOrder:
    def test_push(self):
        queue = StoreQueue()
        queue.push(entry(1, 0x100))
        assert len(queue) == 1

    def test_capacity_enforced(self):
        queue = StoreQueue(capacity=2)
        queue.push(entry(1, 0))
        queue.push(entry(2, 8))
        with pytest.raises(SimulationLimitExceeded):
            queue.push(entry(3, 16))

    def test_program_order_enforced(self):
        queue = StoreQueue()
        queue.push(entry(5, 0))
        with pytest.raises(ValueError):
            queue.push(entry(4, 8))


class TestOverlap:
    def test_overlaps(self):
        e = entry(1, 0x100, data=b"\x00" * 8)
        assert e.overlaps(0x100, 1)
        assert e.overlaps(0x107, 1)
        assert not e.overlaps(0x108, 1)
        assert not e.overlaps(0xF8, 8)

    def test_covers(self):
        e = entry(1, 0x100, data=b"\x00" * 8)
        assert e.covers(0x102, 4)
        assert not e.covers(0x106, 4)

    def test_forward_bytes(self):
        e = entry(1, 0x100, data=b"abcdefgh")
        assert e.forward_bytes(0x102, 3) == b"cde"


class TestLookups:
    def test_unresolved_older(self):
        queue = StoreQueue()
        queue.push(entry(1, 0x100, addr_ready=50))
        queue.push(entry(2, 0x200, addr_ready=5))
        unresolved = queue.unresolved_older(seq=3, now=10)
        assert [e.seq for e in unresolved] == [1]

    def test_nearest_unresolved_is_youngest(self):
        queue = StoreQueue()
        queue.push(entry(1, 0x100, addr_ready=50))
        queue.push(entry(2, 0x200, addr_ready=60))
        nearest = queue.nearest_unresolved(seq=3, now=10)
        assert nearest is not None and nearest.seq == 2

    def test_nearest_unresolved_ignores_younger(self):
        queue = StoreQueue()
        queue.push(entry(5, 0x100, addr_ready=50))
        assert queue.nearest_unresolved(seq=3, now=0) is None

    def test_forwarding_store_matches_resolved_cover(self):
        queue = StoreQueue()
        queue.push(entry(1, 0x100, data=b"abcdefgh", addr_ready=0))
        found = queue.forwarding_store(seq=2, paddr=0x102, size=2, now=10)
        assert found is not None and found.seq == 1

    def test_forwarding_store_ignores_unresolved(self):
        queue = StoreQueue()
        queue.push(entry(1, 0x100, data=b"abcdefgh", addr_ready=99))
        assert queue.forwarding_store(seq=2, paddr=0x100, size=1, now=10) is None

    def test_forwarding_prefers_youngest(self):
        queue = StoreQueue()
        queue.push(entry(1, 0x100, data=b"old!!!!!"))
        queue.push(entry(2, 0x100, data=b"new!!!!!"))
        found = queue.forwarding_store(seq=3, paddr=0x100, size=4, now=10)
        assert found is not None and found.seq == 2


class TestCommit:
    def test_commit_ready_writes_memory(self):
        queue = StoreQueue()
        memory = PhysicalMemory()
        queue.push(entry(1, 0x100, data=b"xy", addr_ready=5, data_ready=5))
        committed = queue.commit_ready(memory, now=10)
        assert [e.seq for e in committed] == [1]
        assert memory.read(0x100, 2) == b"xy"
        assert len(queue) == 0

    def test_commit_stops_at_unready_head(self):
        """Stores commit in order: a slow head blocks younger ready stores."""
        queue = StoreQueue()
        memory = PhysicalMemory()
        queue.push(entry(1, 0x100, addr_ready=99))
        queue.push(entry(2, 0x200, addr_ready=0))
        assert queue.commit_ready(memory, now=10) == []
        assert len(queue) == 2

    def test_commit_respects_max_seq_ceiling(self):
        """The pipeline caps commitment at an open transient window's
        base so wrong-path stores never reach memory."""
        queue = StoreQueue()
        memory = PhysicalMemory()
        queue.push(entry(1, 0x100, data=b"a"))
        queue.push(entry(2, 0x200, data=b"b"))
        committed = queue.commit_ready(memory, now=10, max_seq=1)
        assert [e.seq for e in committed] == [1]
        assert memory.read_u8(0x200) == 0
        assert len(queue) == 1

    def test_commit_max_seq_none_commits_all(self):
        queue = StoreQueue()
        memory = PhysicalMemory()
        queue.push(entry(1, 0x100, data=b"a"))
        queue.push(entry(2, 0x200, data=b"b"))
        assert len(queue.commit_ready(memory, now=10, max_seq=None)) == 2

    def test_drain(self):
        queue = StoreQueue()
        memory = PhysicalMemory()
        queue.push(entry(1, 0x100, data=b"a", addr_ready=99, data_ready=99))
        queue.drain(memory)
        assert memory.read_u8(0x100) == ord("a")
        assert len(queue) == 0

    def test_squash_younger(self):
        queue = StoreQueue()
        queue.push(entry(1, 0x100))
        queue.push(entry(2, 0x200))
        queue.push(entry(3, 0x300))
        squashed = queue.squash_younger(seq=1)
        assert [e.seq for e in squashed] == [2, 3]
        assert [e.seq for e in queue.entries()] == [1]
