"""Unit tests for the TLB model."""

from repro.mem.tlb import Tlb


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb()
        assert tlb.lookup(5) is None
        tlb.fill(5, 42)
        assert tlb.lookup(5) == 42
        assert tlb.hits == 1
        assert tlb.misses == 1

    def test_lru_eviction(self):
        tlb = Tlb(entries=2)
        tlb.fill(1, 10)
        tlb.fill(2, 20)
        tlb.lookup(1)
        tlb.fill(3, 30)  # evicts page 2
        assert tlb.lookup(2) is None
        assert tlb.lookup(1) == 10

    def test_refill_updates_frame(self):
        tlb = Tlb()
        tlb.fill(1, 10)
        tlb.fill(1, 99)
        assert tlb.lookup(1) == 99
        assert tlb.occupancy == 1

    def test_invalidate(self):
        tlb = Tlb()
        tlb.fill(1, 10)
        tlb.invalidate(1)
        assert tlb.lookup(1) is None

    def test_invalidate_absent_is_noop(self):
        Tlb().invalidate(7)  # must not raise

    def test_flush(self):
        tlb = Tlb()
        tlb.fill(1, 10)
        tlb.fill(2, 20)
        tlb.flush()
        assert tlb.occupancy == 0
