"""Unit tests for the sparse physical memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.physical import PAGE_SIZE, PhysicalMemory


class TestBasics:
    def test_reads_zero_by_default(self):
        assert PhysicalMemory().read(0x1234, 4) == b"\x00" * 4

    def test_write_then_read(self):
        mem = PhysicalMemory()
        mem.write(0x1000, b"hello")
        assert mem.read(0x1000, 5) == b"hello"

    def test_cross_frame_write(self):
        mem = PhysicalMemory()
        addr = PAGE_SIZE - 2
        mem.write(addr, b"abcd")
        assert mem.read(addr, 4) == b"abcd"
        assert mem.resident_frames == 2

    def test_sparse_allocation(self):
        mem = PhysicalMemory()
        mem.write_u8(0, 1)
        mem.write_u8(10 * PAGE_SIZE, 2)
        assert mem.resident_frames == 2

    def test_out_of_range_rejected(self):
        mem = PhysicalMemory(size=PAGE_SIZE)
        with pytest.raises(ValueError):
            mem.read_u8(PAGE_SIZE)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory().read_u8(-1)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory().read(0, -1)

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            PhysicalMemory(size=0)


class TestWords:
    def test_u8_roundtrip(self):
        mem = PhysicalMemory()
        mem.write_u8(5, 0xAB)
        assert mem.read_u8(5) == 0xAB

    def test_u8_masks(self):
        mem = PhysicalMemory()
        mem.write_u8(5, 0x1FF)
        assert mem.read_u8(5) == 0xFF

    def test_u64_roundtrip_little_endian(self):
        mem = PhysicalMemory()
        mem.write_u64(0x100, 0x1122334455667788)
        assert mem.read(0x100, 8) == bytes.fromhex("8877665544332211")
        assert mem.read_u64(0x100) == 0x1122334455667788

    @given(st.integers(0, 2**64 - 1), st.integers(0, 10_000))
    def test_u64_roundtrip_property(self, value, paddr):
        mem = PhysicalMemory()
        mem.write_u64(paddr, value)
        assert mem.read_u64(paddr) == value


class TestCopyFrame:
    def test_copies_content(self):
        mem = PhysicalMemory()
        mem.write(3 * PAGE_SIZE + 7, b"data")
        mem.copy_frame(3, 9)
        assert mem.read(9 * PAGE_SIZE + 7, 4) == b"data"

    def test_copy_of_untouched_frame_zeroes_target(self):
        mem = PhysicalMemory()
        mem.write_u8(9 * PAGE_SIZE, 0xFF)
        mem.copy_frame(3, 9)
        assert mem.read_u8(9 * PAGE_SIZE) == 0

    def test_copy_is_a_snapshot(self):
        mem = PhysicalMemory()
        mem.write_u8(3 * PAGE_SIZE, 1)
        mem.copy_frame(3, 9)
        mem.write_u8(3 * PAGE_SIZE, 2)
        assert mem.read_u8(9 * PAGE_SIZE) == 1
