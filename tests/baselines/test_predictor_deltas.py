"""Predictor-behavior deltas: Intel/ARM baselines vs the AMD model.

TABLE IV's qualitative contrasts, pinned as executable facts against the
actual models.  Each test states one delta the paper's attacks depend
on; if a refactor of either side erodes the delta, the attack narrative
(and the TABLE IV row) must be revisited, not just the test.
"""

from repro.baselines import ArmMdu, IntelMdu
from repro.core.counters import CounterState
from repro.core.exec_types import ExecType
from repro.core.hashfn import HASH_BITS, ipa_hash
from repro.core.state_machine import run_sequence

#: The (7 non-aliasing, 1 aliasing) x 3 charge the attacks use.
_CHARGE = ([False] * 7 + [True]) * 3


def _amd_tail_after_charge(drains: int = 40) -> list[ExecType]:
    types, _ = run_sequence(CounterState(), _CHARGE + [False] * drains)
    return types[len(_CHARGE):]


class TestRetrainingSpeedDelta:
    """AMD's stickiness outlives both baselines' memory by an order of
    magnitude — the property the collision scan's 'sticky' test and the
    covert channel's symbol hold time rest on."""

    def test_amd_stall_survives_fifteen_clean_runs(self):
        tail = _amd_tail_after_charge()
        sticky = 0
        for exec_type in tail:
            if exec_type is ExecType.H:
                break
            sticky += 1
        assert sticky == 15

    def test_intel_forgets_an_aliasing_event_after_fifteen_clean_runs(self):
        mdu = IntelMdu()
        for _ in range(15):
            mdu.update(0x40, aliased=False)
        assert mdu.predict_bypass(0x40)
        mdu.update(0x40, aliased=True)
        for count in range(15):
            assert not mdu.predict_bypass(0x40), f"bypass after {count} cleans"
            mdu.update(0x40, aliased=False)
        assert mdu.predict_bypass(0x40)

    def test_arm_forgets_an_aliasing_event_after_one_clean_run(self):
        mdu = ArmMdu()
        mdu.update(0x40, aliased=True)
        assert not mdu.predict_bypass(0x40)
        mdu.update(0x40, aliased=False)
        assert mdu.predict_bypass(0x40)


class TestChargeAsymmetryDelta:
    """On AMD, three aliasing events buy fifteen observable stalls (a 5x
    amplification the covert channel transmits through).  On the
    baselines the effect of an aliasing event is at most 1:1 in ARM's
    case and must be rebuilt run-by-run in Intel's."""

    def test_amd_amplifies_aliasing_events(self):
        aliasing_events = sum(_CHARGE)
        tail = _amd_tail_after_charge()
        observable_stalls = sum(t is not ExecType.H for t in tail)
        assert observable_stalls == 5 * aliasing_events

    def test_arm_observable_effect_is_one_run(self):
        mdu = ArmMdu()
        mdu.update(0x40, aliased=False)
        mdu.update(0x40, aliased=True)  # one event...
        assert not mdu.predict_bypass(0x40)
        mdu.update(0x40, aliased=False)  # ...erased by one clean run
        assert mdu.predict_bypass(0x40)

    def test_intel_bypass_needs_full_saturation_from_scratch(self):
        mdu = IntelMdu()
        mdu.update(0x40, aliased=True)
        cleans = 0
        while not mdu.predict_bypass(0x40):
            mdu.update(0x40, aliased=False)
            cleans += 1
        assert cleans == IntelMdu.COUNTER_MAX


class TestSelectionDelta:
    """Intel/ARM select entries by the address's literal low bits — the
    attacker computes its collision.  AMD folds all 48 IPA bits through
    the hash, so equal low bits do NOT imply a shared entry and the
    attacker must search by code sliding (Section IV-B)."""

    def test_equal_low_bits_collide_on_baselines(self):
        intel = IntelMdu()
        for _ in range(15):
            intel.update(0x1234, aliased=False)
        assert intel.predict_bypass(0x1234 + (1 << IntelMdu.INDEX_BITS))
        arm = ArmMdu()
        arm.update(0xABCD, aliased=False)
        assert arm.predict_bypass(0xABCD + (1 << ArmMdu.INDEX_BITS))

    def test_equal_low_bits_do_not_collide_on_amd(self):
        assert ipa_hash(0x1234) != ipa_hash(0x1234 + (1 << IntelMdu.INDEX_BITS))
        assert ipa_hash(0xABCD) != ipa_hash(0xABCD + (1 << ArmMdu.INDEX_BITS))

    def test_amd_upper_ipa_bits_reach_the_index(self):
        # Flipping a bit far above the index width moves the AMD entry
        # (usually), never the baselines' entries.
        moved = sum(
            ipa_hash(iva) != ipa_hash(iva | 1 << 40)
            for iva in range(0, 1 << 12, 64)
        )
        assert moved > 0
        assert IntelMdu.index(0x34) == IntelMdu.index(0x34 | 1 << 40)
        assert ArmMdu.index(0x34) == ArmMdu.index(0x34 | 1 << 40)

    def test_collision_search_cost_contrast(self):
        # Baselines: direct computation.  AMD: one colliding page offset
        # among 2**HASH_BITS positions, found only by sliding.
        assert IntelMdu().collision_attempts_needed() == 1
        assert ArmMdu().collision_attempts_needed() == 1
        assert (1 << HASH_BITS) == 4096
