"""Tests for the Intel/ARM MDU baselines (TABLE IV)."""

from repro.baselines import ArmMdu, IntelMdu, amd_characterization


class TestIntelMdu:
    def test_initially_conservative(self):
        assert not IntelMdu().predict_bypass(0x1234)

    def test_saturation_enables_bypass(self):
        mdu = IntelMdu()
        for _ in range(15):
            mdu.update(0x1234, aliased=False)
        assert mdu.predict_bypass(0x1234)

    def test_fourteen_is_not_enough(self):
        mdu = IntelMdu()
        for _ in range(14):
            mdu.update(0x1234, aliased=False)
        assert not mdu.predict_bypass(0x1234)

    def test_aliasing_resets(self):
        mdu = IntelMdu()
        for _ in range(15):
            mdu.update(0x1234, aliased=False)
        mdu.update(0x1234, aliased=True)
        assert not mdu.predict_bypass(0x1234)
        assert mdu.counter(0x1234) == 0

    def test_selection_by_low_eight_bits(self):
        mdu = IntelMdu()
        for _ in range(15):
            mdu.update(0x1234, aliased=False)
        # Same low 8 bits -> same entry (the Intel aliasing weakness).
        assert mdu.predict_bypass(0x9934)
        assert not mdu.predict_bypass(0x1235)

    def test_flush(self):
        mdu = IntelMdu()
        for _ in range(15):
            mdu.update(7, aliased=False)
        mdu.flush()
        assert not mdu.predict_bypass(7)

    def test_characterization_row(self):
        row = IntelMdu.characterization()
        assert row.state_bits == "4 bit"
        assert "8 bits" in row.selection
        assert row.entries == 256


class TestArmMdu:
    def test_single_clean_execution_flips(self):
        mdu = ArmMdu()
        mdu.update(0xABCD, aliased=False)
        assert mdu.predict_bypass(0xABCD)

    def test_single_aliasing_flips_back(self):
        mdu = ArmMdu()
        mdu.update(0xABCD, aliased=False)
        mdu.update(0xABCD, aliased=True)
        assert not mdu.predict_bypass(0xABCD)

    def test_selection_by_low_sixteen_bits(self):
        mdu = ArmMdu()
        mdu.update(0x1_ABCD, aliased=False)
        assert mdu.predict_bypass(0x9_ABCD)
        assert not mdu.predict_bypass(0x1_ABCE)

    def test_characterization_row(self):
        row = ArmMdu.characterization()
        assert row.state_bits == "1 bit"
        assert row.entries == 1 << 16


class TestTableIV:
    def test_amd_row(self):
        row = amd_characterization()
        assert "C3" in row.state_bits and "C4" in row.state_bits
        assert "hash" in row.selection
        assert row.entries == 4096

    def test_amd_state_machine_is_largest(self):
        """TABLE IV's point: AMD's feasible state machine (6+2 bits)
        exceeds Intel's 4 and ARM's 1."""
        amd_bits = 6 + 2
        assert amd_bits > 4 > 1

    def test_collision_cost_contrast(self):
        """Intel/ARM selection is address-derived (no search); AMD needs
        the code-sliding search of Section IV-B."""
        assert IntelMdu().collision_attempts_needed() == 1
        assert ArmMdu().collision_attempts_needed() == 1
