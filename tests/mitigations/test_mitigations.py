"""Tests for the Section VI mitigations."""

import pytest

from repro.core.exec_types import TimingClass
from repro.cpu.machine import Machine
from repro.mitigations.secure_timer import SecureTimer
from repro.mitigations.ssbd import measure_workload, ssbd_enabled
from repro.workloads.spec2017 import SPEC2017


class TestSsbdContext:
    def test_sets_and_restores(self):
        machine = Machine(seed=1)
        assert not machine.core.spec_ctrl.ssbd
        with ssbd_enabled(machine.core):
            assert machine.core.spec_ctrl.ssbd
        assert not machine.core.spec_ctrl.ssbd

    def test_restores_on_exception(self):
        machine = Machine(seed=1)
        with pytest.raises(RuntimeError):
            with ssbd_enabled(machine.core):
                raise RuntimeError("boom")
        assert not machine.core.spec_ctrl.ssbd


class TestSsbdOverhead:
    def test_headliners_exceed_twenty_percent(self):
        """Fig 12: perlbench and exchange2 pay > 20%."""
        for name in ("perlbench", "exchange2"):
            timing = measure_workload(SPEC2017[name], operations=300, repetitions=2)
            assert timing.overhead > 0.20, name

    def test_memory_bound_benchmarks_barely_notice(self):
        for name in ("mcf", "xz"):
            timing = measure_workload(SPEC2017[name], operations=300, repetitions=2)
            assert timing.overhead < 0.10, name

    def test_overhead_is_never_negative_within_noise(self):
        timing = measure_workload(SPEC2017["leela"], operations=200, repetitions=2)
        assert timing.overhead > -0.05


class TestSsbdStopsProbing:
    def test_no_timing_differences_under_ssbd(self):
        """Section VI-A: with SSBD every stld is a Block-state stall —
        the attacker's calibration collapses (bypass and stall read the
        same), so predictor state is unobservable."""
        from repro.attacks.runtime import AttackerStld

        machine = Machine(seed=3)
        machine.core.set_ssbd(True)
        process = machine.kernel.create_process("attacker")
        attacker = AttackerStld(machine, process, slide_pages=2)
        means = attacker.classifier.calibration.means
        gap = abs(
            means[TimingClass.BYPASS] - means[TimingClass.STALL_CACHE]
        )
        baseline_gap = 40  # the unmitigated bypass-vs-stall separation
        assert gap < baseline_gap / 4
        # The rollback classes vanished too: nothing speculates.
        assert (
            abs(means[TimingClass.ROLLBACK_BYPASS] - means[TimingClass.BYPASS])
            < baseline_gap
        )


class TestSecureTimer:
    def test_quantizes(self):
        timer = SecureTimer(resolution=100, jitter=0)
        assert timer(257) == 200

    def test_jitter_bounded(self):
        timer = SecureTimer(resolution=1, jitter=5, seed=1)
        readings = [timer(1000) for _ in range(100)]
        assert all(995 <= r <= 1005 for r in readings)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            SecureTimer(resolution=0)

    def test_defeats_margin(self):
        assert SecureTimer(resolution=256).defeats_margin(45)
        assert not SecureTimer(resolution=2, jitter=0).defeats_margin(45)

    def test_defeats_margin_at_the_exact_margin(self):
        """The contract is strict: a resolution (or jitter) exactly equal
        to the gap still resolves it, so neither term defeats its own
        value — only strictly larger ones do."""
        assert not SecureTimer(resolution=45, jitter=45).defeats_margin(45)
        assert SecureTimer(resolution=46, jitter=0).defeats_margin(45)
        assert SecureTimer(resolution=1, jitter=46).defeats_margin(45)

    def test_one_cycle_resolution_without_jitter_is_identity(self):
        timer = SecureTimer(resolution=1, jitter=0)
        assert [timer(c) for c in (0, 1, 45, 1000)] == [0, 1, 45, 1000]

    def test_zero_cycles_quantize_to_zero(self):
        # max(0, ...) clamps a negative jittered reading: a secure timer
        # never reports time running backwards.
        timer = SecureTimer(resolution=100, jitter=64, seed=2)
        assert all(timer(0) == 0 for _ in range(50))

    def test_readings_stay_on_the_resolution_grid(self):
        timer = SecureTimer(resolution=128, jitter=32, seed=3)
        assert all(timer(c) % 128 == 0 for c in range(0, 2000, 7))

    def test_defeats_attacker_calibration(self):
        """With the timer coarser than every timing gap, the attacker's
        own calibration cannot tell the classes apart."""
        from repro.attacks.runtime import AttackerStld

        machine = Machine(seed=4)
        process = machine.kernel.create_process("attacker")
        attacker = AttackerStld(
            machine, process, slide_pages=2,
            timer=SecureTimer(resolution=512, jitter=128),
        )
        # Calibration "succeeded" numerically, but the centroids carry no
        # usable margin: bypass and stall collapse.
        means = attacker.classifier.calibration.means
        assert (
            abs(
                means[TimingClass.BYPASS] - means[TimingClass.STALL_CACHE]
            )
            < 512
        )


class TestFlushSsbpOnSwitch:
    def test_ssbp_cleared_between_processes(self):
        machine = Machine(seed=5, flush_ssbp_on_switch=True)
        victim = machine.kernel.create_process("victim")
        attacker = machine.kernel.create_process("attacker")
        machine.kernel.schedule(victim)
        unit = machine.core.thread(0).unit
        unit.ssbp.update(7, 15, 3)
        machine.kernel.schedule(attacker)
        assert unit.ssbp.occupancy == 0


class TestRandomizedSelection:
    def test_salt_changes_on_switch(self):
        machine = Machine(seed=6, resalt_on_switch=True)
        a = machine.kernel.create_process("a")
        b = machine.kernel.create_process("b")
        unit = machine.core.thread(0).unit
        machine.kernel.schedule(a)
        salt_one = unit.hash_salt
        machine.kernel.schedule(b)
        assert unit.hash_salt != salt_one

    def test_salt_changes_on_syscall(self):
        machine = Machine(seed=6, resalt_on_switch=True)
        a = machine.kernel.create_process("a")
        machine.kernel.schedule(a)
        unit = machine.core.thread(0).unit
        before = unit.hash_salt
        machine.kernel.syscall(a)
        assert unit.hash_salt != before

    def test_stable_without_mitigation(self):
        machine = Machine(seed=6)
        a = machine.kernel.create_process("a")
        machine.kernel.schedule(a)
        assert machine.core.thread(0).unit.hash_salt == 0
