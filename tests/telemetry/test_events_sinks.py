"""Event serialization round-trips and sink/tracer behaviour."""

import pytest

from repro.telemetry import activate, current_tracer, deactivate, recording
from repro.telemetry.events import (
    TRACE_SCHEMA,
    EVENT_KINDS,
    DispatchEvent,
    PredictorTransitionEvent,
    SquashEvent,
    StldPredictEvent,
    event_from_dict,
)
from repro.telemetry.sinks import (
    JsonlSink,
    RingBufferSink,
    Tracer,
    read_trace,
    trace_header,
)


class TestEventRoundTrip:
    def test_every_kind_is_registered(self):
        assert "dispatch" in EVENT_KINDS
        assert "predictor-transition" in EVENT_KINDS

    def test_dispatch_round_trips(self):
        event = DispatchEvent(cycle=3, thread=0, index=7, op="Load")
        data = event.to_dict()
        assert data["kind"] == "dispatch"
        assert event_from_dict(data) == event

    def test_predictor_transition_round_trips(self):
        event = PredictorTransitionEvent(
            cycle=9, thread=1, store_hash=0x11, load_hash=0x22,
            aliasing=True, exec_type="A", state_before="initialize",
            state_after="sq-stall", counters_before=(0, 0, 0, 0, 0),
            counters_after=(1, 0, 0, 0, 0),
        )
        rebuilt = event_from_dict(event.to_dict())
        assert rebuilt == event
        assert rebuilt.counters_after == (1, 0, 0, 0, 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"kind": "nonsense", "cycle": 0, "thread": 0})


class TestTracer:
    def test_assigns_monotonic_seq(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        tracer.emit(DispatchEvent(cycle=0, thread=0, index=0, op="Halt"))
        tracer.emit(SquashEvent(cycle=1, thread=0, reason="fault",
                                from_index=0, penalty=10))
        assert [e["seq"] for e in sink.events()] == [0, 1]
        assert tracer.events_emitted == 2

    def test_ring_buffer_drops_oldest(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sink)
        for index in range(3):
            tracer.emit(DispatchEvent(cycle=index, thread=0, index=index, op="Pad"))
        assert sink.dropped == 1
        assert [e["seq"] for e in sink.events()] == [1, 2]


class TestActivation:
    def test_recording_scopes_the_tracer(self):
        assert current_tracer() is None
        with recording(RingBufferSink()) as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_double_activation_rejected(self):
        activate(RingBufferSink())
        try:
            with pytest.raises(RuntimeError):
                activate(RingBufferSink())
        finally:
            deactivate()
        assert current_tracer() is None


class TestJsonlSink:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        sink = JsonlSink(path, header=trace_header(target="unit", seed=5))
        tracer = Tracer(sink)
        tracer.emit(StldPredictEvent(
            cycle=2, thread=0, index=1, store_ipa=0x100, load_ipa=0x200,
            aliasing=False, psf_forward=False, sticky=False, covers=False,
        ))
        sink.close()
        header, events = read_trace(path)
        assert header["schema"] == TRACE_SCHEMA
        assert header["target"] == "unit" and header["seed"] == 5
        assert len(events) == 1
        assert events[0]["kind"] == "stld-predict"

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_read_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"dispatch"}\n')
        with pytest.raises(ValueError):
            read_trace(path)
