"""Metrics registry: counters, histograms, snapshots, deltas, merging."""

import pytest

from repro.telemetry.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5


class TestHistogram:
    def test_observe_and_mean(self):
        hist = Histogram("h")
        for value in (1, 2, 3):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6
        assert hist.mean == 2.0
        assert hist.min == 1 and hist.max == 3

    def test_power_of_two_bucketing(self):
        hist = Histogram("h")
        hist.observe(1)    # bucket 1
        hist.observe(100)  # bucket 7 (64..127)
        assert sum(hist.buckets) == 2


class TestRegistry:
    def test_acquisition_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_drops_zero_entries(self):
        reg = MetricsRegistry()
        reg.counter("touched").inc()
        reg.counter("untouched")
        snap = reg.snapshot()
        assert snap["counters"] == {"touched": 1}

    def test_snapshot_can_exclude_timers(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        assert "timers" in reg.snapshot()
        assert "timers" not in reg.snapshot(timers=False)

    def test_delta_since_names_only_window_activity(self):
        reg = MetricsRegistry()
        reg.counter("before").inc(3)
        snap = reg.snapshot(timers=False)
        reg.counter("during").inc(2)
        reg.counter("before").inc()
        delta = reg.delta_since(snap, timers=False)
        assert delta["counters"] == {"before": 1, "during": 2}

    def test_histogram_delta_has_no_extremes(self):
        # min/max are running extremes of the whole process and cannot be
        # differenced, so per-task deltas must omit them (determinism
        # across worker layouts).
        reg = MetricsRegistry()
        reg.histogram("h").observe(1000)
        snap = reg.snapshot(timers=False)
        reg.histogram("h").observe(4)
        delta = reg.delta_since(snap, timers=False)
        hist = delta["histograms"]["h"]
        assert hist["count"] == 1 and hist["sum"] == 4
        assert "min" not in hist and "max" not in hist

    def test_global_registry_is_a_singleton(self):
        assert registry() is registry()


class TestMergeSnapshots:
    def test_counters_add(self):
        merged = merge_snapshots(
            [{"counters": {"a": 1}}, {"counters": {"a": 2, "b": 5}}]
        )
        assert merged["counters"] == {"a": 3, "b": 5}

    def test_histograms_combine(self):
        left = {"histograms": {"h": {"count": 2, "sum": 10, "buckets": [1, 1]}}}
        right = {"histograms": {"h": {"count": 1, "sum": 4, "buckets": [0, 1]}}}
        merged = merge_snapshots([left, right])
        hist = merged["histograms"]["h"]
        assert hist["count"] == 3 and hist["sum"] == 14
        assert hist["buckets"] == [1, 2]
        # Inputs without extremes (per-task deltas) merge without them.
        assert "min" not in hist and "max" not in hist

    def test_empty_merge(self):
        assert merge_snapshots([]) == {"counters": {}, "histograms": {}}
