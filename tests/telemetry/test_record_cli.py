"""Recording targets and the ``repro-trace`` CLI end to end.

The acceptance path of the telemetry subsystem: record the Spectre-STL
demo under ``none`` and ``ssbd`` and prove ``diff`` pinpoints the first
divergent event — the mitigated run's stld-predict stops reporting a
predicted bypass.  Re-recording must be byte-identical (the determinism
contract ``make trace-smoke`` enforces across ``--jobs``).
"""

import json

import pytest

from repro.runtime import exitcodes
from repro.telemetry.cli import main
from repro.telemetry.record import record_target, target_slug, trace_path
from repro.telemetry.sinks import read_trace


class TestRecordTarget:
    def test_slug_and_path(self, tmp_path):
        assert target_slug("stl", "ssbd") == "stl-ssbd"
        assert target_slug("case:fuzz-v1:5:12", "none") == "case-fuzz-v1-5-12-none"
        path = trace_path(tmp_path, "stl", "none")
        assert path.name == "stl-none.trace.jsonl"

    def test_stl_demo_records(self, tmp_path):
        row = record_target("stl", tmp_path, seed=None, mitigation="none")
        assert row["events"] > 0
        header, events = read_trace(row["path"])
        assert header["target"] == "stl"
        assert any(e["kind"] == "stld-predict" for e in events)
        assert any(e["kind"] == "predictor-transition" for e in events)

    def test_case_target_records(self, tmp_path):
        row = record_target("case:fuzz-v1:5:12", tmp_path, seed=None,
                            mitigation="none")
        _, events = read_trace(row["path"])
        assert events, "generated case must emit events"

    def test_unknown_mitigation_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            record_target("stl", tmp_path, seed=None, mitigation="bogus")

    def test_rerecording_is_byte_identical(self, tmp_path):
        a = record_target("stl", tmp_path / "a", seed=None, mitigation="none")
        b = record_target("stl", tmp_path / "b", seed=None, mitigation="none")
        assert open(a["path"], "rb").read() == open(b["path"], "rb").read()


@pytest.fixture(scope="module")
def stl_traces(tmp_path_factory):
    out = tmp_path_factory.mktemp("traces")
    none_row = record_target("stl", out, seed=None, mitigation="none")
    ssbd_row = record_target("stl", out, seed=None, mitigation="ssbd")
    return none_row["path"], ssbd_row["path"]


class TestCli:
    def test_record_and_summarize(self, tmp_path, capsys):
        code = main(["record", "stl", "--out", str(tmp_path)])
        assert code == exitcodes.EXIT_OK
        trace = tmp_path / "stl-none.trace.jsonl"
        assert trace.exists()
        capsys.readouterr()  # drain the record command's own output

        code = main(["summarize", str(trace), "--json"])
        assert code == exitcodes.EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["events"] > 0
        assert payload["summary"]["table1_edges"]

    def test_diff_pinpoints_mitigation_divergence(self, stl_traces, capsys):
        none_path, ssbd_path = stl_traces
        code = main(["diff", str(none_path), str(ssbd_path)])
        out = capsys.readouterr().out
        # SSBD forces every prediction into Block: the first divergent
        # event is an stld-predict whose aliasing/bypass fields flip.
        assert code == exitcodes.EXIT_FAILURES
        assert "first divergence" in out
        assert "stld-predict" in out

    def test_diff_identical_exits_zero(self, stl_traces, capsys):
        none_path, _ = stl_traces
        assert main(["diff", str(none_path), str(none_path)]) == exitcodes.EXIT_OK
        assert "identical" in capsys.readouterr().out

    def test_export_chrome(self, stl_traces, tmp_path):
        none_path, _ = stl_traces
        out = tmp_path / "trace.json"
        code = main(["export", str(none_path), "--format", "chrome",
                     "--out", str(out)])
        assert code == exitcodes.EXIT_OK
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_export_timeline_stdout(self, stl_traces, capsys):
        none_path, _ = stl_traces
        assert main(["export", str(none_path), "--format", "timeline"]) \
            == exitcodes.EXIT_OK
        assert "stld-predict" in capsys.readouterr().out

    def test_bad_trace_is_usage_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["summarize", str(missing)]) == exitcodes.EXIT_USAGE

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro-trace" in capsys.readouterr().out
