"""Trace diffing and the Chrome-trace/timeline exporters."""

from repro.telemetry.diff import first_divergence
from repro.telemetry.export import summarize_events, to_chrome_trace, to_timeline
from repro.telemetry.sinks import trace_header


def _event(kind, seq, **payload):
    data = {"kind": kind, "seq": seq, "cycle": payload.pop("cycle", seq),
            "thread": 0}
    data.update(payload)
    return data


def _stream():
    return [
        _event("dispatch", 0, index=0, op="Store"),
        _event("dispatch", 1, index=1, op="Load"),
        _event("stld-predict", 2, index=1, store_ipa=1, load_ipa=2,
               aliasing=False, psf_forward=False, sticky=False, covers=False),
        _event("commit", 3, index=0, op="Store", retired=1),
        _event("commit", 4, index=1, op="Load", retired=2),
    ]


class TestFirstDivergence:
    def test_identical(self):
        diff = first_divergence(_stream(), _stream())
        assert diff.identical
        assert "identical" in diff.describe()

    def test_payload_divergence(self):
        left, right = _stream(), _stream()
        right[2]["aliasing"] = True
        diff = first_divergence(left, right)
        assert not diff.identical
        assert diff.index == 2
        assert diff.fields == ("aliasing",)
        assert "aliasing" in diff.describe()

    def test_seq_always_ignored(self):
        left, right = _stream(), _stream()
        for event in right:
            event["seq"] += 10
        assert first_divergence(left, right).identical

    def test_ignore_fields(self):
        left, right = _stream(), _stream()
        for event in right:
            event["cycle"] += 5
        assert not first_divergence(left, right).identical
        assert first_divergence(left, right, ignore=("cycle",)).identical

    def test_length_mismatch(self):
        left = _stream()
        diff = first_divergence(left, left[:3])
        assert not diff.identical
        assert diff.index == 3
        assert "(stream ended)" in diff.describe()

    def test_context_captures_prefix_tail(self):
        left, right = _stream(), _stream()
        right[4]["retired"] = 99
        diff = first_divergence(left, right, context=2)
        assert len(diff.context) == 2
        assert diff.context[-1]["kind"] == "commit"


class TestExport:
    def test_summarize(self):
        summary = summarize_events(_stream())
        assert summary["events"] == 5
        assert summary["kinds"]["dispatch"] == 2
        assert summary["last_cycle"] == 4

    def test_chrome_trace_pairs_dispatch_commit(self):
        doc = to_chrome_trace(trace_header(target="unit"), _stream())
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        # two dispatch->commit slices plus the stld-predict instant slice
        assert len(slices) == 3
        assert doc["displayTimeUnit"] == "ms"

    def test_timeline_lists_every_event(self):
        text = to_timeline(trace_header(target="unit"), _stream())
        lines = [line for line in text.splitlines() if line.strip()]
        # header block + one line per event
        assert sum("dispatch" in line for line in lines) >= 2
        assert any("stld-predict" in line for line in lines)
