"""Tests for the SVM classifier and statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import fit_gaussian, frequency_vector, mean, stdev
from repro.analysis.svm import LinearSvm, OneVsRestSvm, train_test_split
from repro.errors import ReproError


def blobs(centers, per_class=30, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    features, labels = [], []
    for label, center in enumerate(centers):
        pts = rng.normal(loc=center, scale=spread, size=(per_class, len(center)))
        features.append(pts)
        labels += [label] * per_class
    return np.vstack(features), np.array(labels)


class TestLinearSvm:
    def test_separable_binary(self):
        X, y = blobs([[0, 0], [3, 3]])
        labels = np.where(y == 0, -1, 1)
        svm = LinearSvm().fit(X, labels)
        assert np.mean(svm.predict(X) == labels) > 0.97

    def test_rejects_bad_labels(self):
        X = np.zeros((4, 2))
        with pytest.raises(ReproError):
            LinearSvm().fit(X, np.array([0, 1, 2, 3]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(ReproError):
            LinearSvm().predict(np.zeros((1, 2)))

    def test_deterministic(self):
        X, y = blobs([[0, 0], [2, 2]])
        labels = np.where(y == 0, -1, 1)
        a = LinearSvm(seed=3).fit(X, labels)
        b = LinearSvm(seed=3).fit(X, labels)
        assert np.allclose(a.weights, b.weights)


class TestOneVsRest:
    def test_multiclass_blobs(self):
        X, y = blobs([[0, 0], [4, 0], [0, 4], [4, 4]])
        clf = OneVsRestSvm(epochs=120).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_single_class_rejected(self):
        with pytest.raises(ReproError):
            OneVsRestSvm().fit(np.zeros((3, 2)), np.zeros(3))

    def test_generalizes_to_held_out(self):
        X, y = blobs([[0, 0], [5, 5], [0, 5]], per_class=40)
        Xtr, ytr, Xte, yte = train_test_split(X, y, 0.25, seed=2)
        clf = OneVsRestSvm(epochs=120).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.9


class TestSplit:
    def test_sizes(self):
        X = np.arange(40).reshape(20, 2).astype(float)
        y = np.arange(20)
        Xtr, ytr, Xte, yte = train_test_split(X, y, 0.25, seed=0)
        assert len(yte) == 5 and len(ytr) == 15

    def test_disjoint(self):
        X = np.arange(40).reshape(20, 2).astype(float)
        y = np.arange(20)
        _, ytr, _, yte = train_test_split(X, y, 0.3)
        assert not set(ytr.tolist()) & set(yte.tolist())

    def test_invalid_fraction(self):
        with pytest.raises(ReproError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5)


class TestStats:
    def test_mean_and_stdev(self):
        assert mean([1, 2, 3]) == 2
        assert stdev([1, 2, 3]) == pytest.approx(1.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_single_is_zero(self):
        assert stdev([5]) == 0.0

    def test_gaussian_fit_recovers_moments(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(2200, 300, size=5000).tolist()
        fit = fit_gaussian(samples)
        assert fit.mu == pytest.approx(2200, rel=0.02)
        assert fit.sigma == pytest.approx(300, rel=0.05)
        assert fit.within(2200)
        assert not fit.within(2200 + 10 * 300)

    def test_gaussian_pdf_peaks_at_mu(self):
        fit = fit_gaussian([0.0, 1.0, 2.0])
        assert fit.pdf(fit.mu) > fit.pdf(fit.mu + 1)

    def test_frequency_vector_excludes_zeros(self):
        vec = frequency_vector([0, 0, 5, 5, 7])
        assert vec[4] == pytest.approx(2 / 3)
        assert vec[6] == pytest.approx(1 / 3)

    def test_frequency_vector_all_zero(self):
        assert frequency_vector([0, 0]) == [0.0] * 35

    @given(st.lists(st.integers(0, 40), max_size=60))
    def test_frequency_vector_sums_to_one_or_zero(self, values):
        total = sum(frequency_vector(values))
        assert total == pytest.approx(1.0) or total == 0.0
