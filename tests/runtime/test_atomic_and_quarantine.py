"""Atomic persistence, quarantine discipline, and the exit-code contract."""

import json

import pytest

from repro.runtime.atomic import atomic_write_json, atomic_write_text
from repro.runtime.exitcodes import (
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_USAGE,
    describe,
)
from repro.runtime.quarantine import QUARANTINE_DIR, quarantine, quarantined_files


class TestAtomicWrite:
    def test_roundtrip_and_trailing_newline(self, tmp_path):
        path = atomic_write_json(tmp_path / "a.json", {"b": 1, "a": [2]})
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text) == {"a": [2], "b": 1}

    def test_sorts_keys_canonically(self, tmp_path):
        path = atomic_write_json(tmp_path / "a.json", {"z": 0, "a": 0})
        assert path.read_text().index('"a"') < path.read_text().index('"z"')

    def test_creates_parent_directories(self, tmp_path):
        path = atomic_write_text(tmp_path / "deep" / "er" / "f.txt", "x")
        assert path.read_text() == "x"

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "f.json"
        atomic_write_json(target, {"v": 1})
        atomic_write_json(target, {"v": 2})
        assert json.loads(target.read_text()) == {"v": 2}

    def test_no_staging_files_left_behind(self, tmp_path):
        atomic_write_json(tmp_path / "f.json", {"v": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["f.json"]

    def test_failed_serialization_leaves_no_tmp(self, tmp_path):
        with pytest.raises(TypeError):
            atomic_write_json(tmp_path / "f.json", {"bad": object()})
        assert not (tmp_path / "f.json").exists()
        assert list(tmp_path.glob("*.tmp")) == []


class TestQuarantine:
    def test_moves_file_with_reason_sidecar(self, tmp_path):
        victim = tmp_path / "ab" / "entry.json"
        victim.parent.mkdir()
        victim.write_text("{broken")
        dest = quarantine(tmp_path, victim, "not valid JSON")
        assert dest is not None
        assert not victim.exists()
        assert dest.parent == tmp_path / QUARANTINE_DIR
        assert dest.read_text() == "{broken"
        reason = dest.with_name(dest.name + ".reason")
        assert "not valid JSON" in reason.read_text()

    def test_name_collisions_all_survive(self, tmp_path):
        for i in range(3):
            victim = tmp_path / f"d{i}"
            victim.mkdir()
            victim = victim / "same.json"
            victim.write_text(str(i))
        dests = [
            quarantine(tmp_path, tmp_path / f"d{i}" / "same.json", "r")
            for i in range(3)
        ]
        assert len({d.name for d in dests}) == 3
        assert sorted(d.read_text() for d in dests) == ["0", "1", "2"]

    def test_quarantined_files_excludes_reason_sidecars(self, tmp_path):
        victim = tmp_path / "x.json"
        victim.write_text("junk")
        quarantine(tmp_path, victim, "why")
        files = quarantined_files(tmp_path)
        assert [f.name for f in files] == ["x.json"]

    def test_missing_source_returns_none(self, tmp_path):
        assert quarantine(tmp_path, tmp_path / "ghost.json", "r") is None


class TestExitCodes:
    def test_contract_values(self):
        assert (EXIT_OK, EXIT_FAILURES, EXIT_USAGE, EXIT_INTERRUPTED) == (0, 1, 2, 3)

    def test_describe_known_and_unknown(self):
        assert "clean" in describe(EXIT_OK)
        assert "resume" in describe(EXIT_INTERRUPTED)
        assert "unknown" in describe(42)
