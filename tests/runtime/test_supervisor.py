"""The supervised pool: deadlines, retries, crash isolation, drains.

Worker callables live at module level because pool mode ships them to
subprocesses.  Cross-attempt state (fail once, then succeed) goes
through marker files, since retried attempts may run in fresh processes.
"""

import signal
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.runtime.chaos import CORRUPT_RESULT, ChaosPlan
from repro.runtime.supervisor import (
    TaskFailure,
    backoff_schedule,
    run_supervised,
)


def _double(payload):
    return payload * 2


def _boom(payload):
    raise ValueError(f"boom on {payload}")


def _flaky(payload):
    """Fails until its marker file exists, then succeeds."""
    marker = Path(payload["marker"])
    if not marker.exists():
        marker.write_text("tried")
        raise ValueError("first attempt fails")
    return "recovered"


def _sleeper(payload):
    time.sleep(payload["sleep"])
    return "done"


def _interrupting(payload):
    raise KeyboardInterrupt


class TestBackoffSchedule:
    def test_deterministic_capped_exponential(self):
        assert backoff_schedule(4, base=0.1, cap=0.5) == (0.1, 0.2, 0.4, 0.5)
        assert backoff_schedule(4, base=0.1, cap=0.5) == backoff_schedule(
            4, base=0.1, cap=0.5
        )

    def test_zero_retries_empty(self):
        assert backoff_schedule(0) == ()


class TestInline:
    def test_results_and_order_independent_ids(self):
        report = run_supervised([(5, 1), (9, 2)], _double, jobs=1)
        assert report.results == {5: 2, 9: 4}
        assert report.failures == [] and not report.interrupted

    def test_retry_then_success(self, tmp_path):
        payload = {"marker": str(tmp_path / "m")}
        report = run_supervised([("t", payload)], _flaky, jobs=1, retries=2)
        assert report.results == {"t": "recovered"}
        assert report.retried == 1

    def test_exhausted_retries_become_structured_failure(self):
        events = []
        report = run_supervised(
            [("bad", 0)], _boom, jobs=1, retries=1, progress=events.append
        )
        assert report.results == {}
        (failure,) = report.failures
        assert failure == TaskFailure("bad", "error", 2, "ValueError: boom on 0")
        assert any("failed" in line for line in events)

    def test_validation_error_is_invalid_result_kind(self):
        def validate(value):
            raise KeyError("schema")

        report = run_supervised([(0, 1)], _double, jobs=1, retries=0,
                                validate=validate)
        assert report.failures[0].kind == "invalid-result"

    def test_keyboard_interrupt_stops_and_flags(self):
        seen = []
        report = run_supervised(
            [(0, 1), (1, 2), (2, 3)], _interrupting, jobs=1,
            on_result=lambda tid, val: seen.append(tid),
        )
        assert report.interrupted is True
        assert seen == []

    def test_on_result_streams_completions(self):
        seen = []
        run_supervised([(0, 1), (1, 2)], _double, jobs=1,
                       on_result=lambda tid, val: seen.append((tid, val)))
        assert seen == [(0, 2), (1, 4)]


class TestPool:
    def test_parallel_results_complete(self):
        tasks = [(i, i) for i in range(6)]
        report = run_supervised(tasks, _double, jobs=3)
        assert report.results == {i: 2 * i for i in range(6)}

    def test_hang_is_killed_at_deadline_and_failed(self):
        report = run_supervised(
            [(0, {"sleep": 30.0})], _sleeper, jobs=1, timeout=0.5, retries=0
        )
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert "deadline" in failure.message

    def test_hang_retry_can_succeed(self, tmp_path):
        # first attempt fails fast, second succeeds: proves the respawned
        # worker picks the retry up (marker crosses the process boundary).
        payload = {"marker": str(tmp_path / "m")}
        report = run_supervised([("t", payload)], _flaky, jobs=2, timeout=5.0,
                                retries=2)
        assert report.results == {"t": "recovered"}

    def test_chaos_crash_is_survived(self):
        plan = ChaosPlan.from_spec("crash@1")
        try:
            report = run_supervised(
                [(0, 10), (1, 11), (2, 12)], _double, jobs=2, retries=2,
                chaos=plan,
            )
        finally:
            plan.cleanup()
        assert report.results == {0: 20, 1: 22, 2: 24}
        assert report.retried >= 1 and report.failures == []

    def test_chaos_crash_without_retries_is_structured_failure(self):
        plan = ChaosPlan.from_spec("crash@0")
        try:
            report = run_supervised([(0, 10), (1, 11)], _double, jobs=2,
                                    retries=0, chaos=plan)
        finally:
            plan.cleanup()
        assert report.results == {1: 22}
        (failure,) = report.failures
        assert failure.task == 0 and failure.kind == "crash"

    def test_chaos_corrupt_result_retried_to_success(self):
        def validate(value):
            if value == CORRUPT_RESULT:
                raise ValueError("unparseable result")
            return value

        plan = ChaosPlan.from_spec("corrupt@0")
        try:
            report = run_supervised([(0, 21)], _double, jobs=1, retries=1,
                                    chaos=plan, validate=validate)
        finally:
            plan.cleanup()
        assert report.results == {0: 42}
        assert report.retried == 1

    def test_chaos_interrupt_flags_report_and_skips_pending(self):
        plan = ChaosPlan.from_spec("interrupt@0")
        try:
            report = run_supervised([(0, 1), (1, 2)], _double, jobs=1,
                                    chaos=plan, grace_s=0.5)
        finally:
            plan.cleanup()
        assert report.interrupted is True
        assert 0 in report.results

    def test_sigterm_drains_and_interrupts(self):
        timer = threading.Timer(0.6, signal.raise_signal, args=(signal.SIGTERM,))
        timer.start()
        try:
            # timeout forces pool mode, where SIGTERM is delivered as an
            # interrupt; it is far longer than the test needs.
            report = run_supervised(
                [(0, {"sleep": 30.0})], _sleeper, jobs=1, timeout=60.0,
                retries=0, grace_s=0.3,
            )
        finally:
            timer.cancel()
        assert report.interrupted is True
        assert report.results == {}


class TestChaosPlan:
    def test_bad_token_rejected(self):
        with pytest.raises(ConfigError):
            ChaosPlan.from_spec("explode@3")
        with pytest.raises(ConfigError):
            ChaosPlan.from_spec("crash3")
        with pytest.raises(ConfigError):
            ChaosPlan.from_spec("   ")

    def test_each_fault_fires_once(self, tmp_path):
        plan = ChaosPlan("corrupt@7", tmp_path)
        assert plan.after_task(7, "real") == CORRUPT_RESULT
        assert plan.after_task(7, "real") == "real"
        assert plan.after_task(8, "real") == "real"

    def test_interrupt_claim_is_once(self, tmp_path):
        plan = ChaosPlan("interrupt@x", tmp_path)
        assert plan.wants_interrupt("x") is True
        assert plan.wants_interrupt("x") is False
        assert plan.wants_interrupt("y") is False
