"""The supervised pool: deadlines, retries, crash isolation, drains.

Worker callables live at module level because pool mode ships them to
subprocesses.  Cross-attempt state (fail once, then succeed) goes
through marker files, since retried attempts may run in fresh processes.
"""

import signal
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.runtime.chaos import CORRUPT_RESULT, ChaosPlan
from repro.runtime.supervisor import (
    MAX_BATCH,
    TaskFailure,
    adaptive_batch,
    backoff_schedule,
    run_supervised,
)


def _double(payload):
    return payload * 2


def _boom(payload):
    raise ValueError(f"boom on {payload}")


def _flaky(payload):
    """Fails until its marker file exists, then succeeds."""
    marker = Path(payload["marker"])
    if not marker.exists():
        marker.write_text("tried")
        raise ValueError("first attempt fails")
    return "recovered"


def _sleeper(payload):
    time.sleep(payload["sleep"])
    return "done"


def _interrupting(payload):
    raise KeyboardInterrupt


def _slow_once(payload):
    """Sleeps past the deadline on its first attempt, then returns."""
    marker = Path(payload["marker"])
    if marker.name != "-" and not marker.exists():
        marker.write_text("slept")
        time.sleep(30.0)
    return "done"


class TestBackoffSchedule:
    def test_deterministic_capped_exponential(self):
        assert backoff_schedule(4, base=0.1, cap=0.5) == (0.1, 0.2, 0.4, 0.5)
        assert backoff_schedule(4, base=0.1, cap=0.5) == backoff_schedule(
            4, base=0.1, cap=0.5
        )

    def test_zero_retries_empty(self):
        assert backoff_schedule(0) == ()


class TestInline:
    def test_results_and_order_independent_ids(self):
        report = run_supervised([(5, 1), (9, 2)], _double, jobs=1)
        assert report.results == {5: 2, 9: 4}
        assert report.failures == [] and not report.interrupted

    def test_retry_then_success(self, tmp_path):
        payload = {"marker": str(tmp_path / "m")}
        report = run_supervised([("t", payload)], _flaky, jobs=1, retries=2)
        assert report.results == {"t": "recovered"}
        assert report.retried == 1

    def test_exhausted_retries_become_structured_failure(self):
        events = []
        report = run_supervised(
            [("bad", 0)], _boom, jobs=1, retries=1, progress=events.append
        )
        assert report.results == {}
        (failure,) = report.failures
        assert failure == TaskFailure("bad", "error", 2, "ValueError: boom on 0")
        assert any("failed" in line for line in events)

    def test_validation_error_is_invalid_result_kind(self):
        def validate(value):
            raise KeyError("schema")

        report = run_supervised([(0, 1)], _double, jobs=1, retries=0,
                                validate=validate)
        assert report.failures[0].kind == "invalid-result"

    def test_keyboard_interrupt_stops_and_flags(self):
        seen = []
        report = run_supervised(
            [(0, 1), (1, 2), (2, 3)], _interrupting, jobs=1,
            on_result=lambda tid, val: seen.append(tid),
        )
        assert report.interrupted is True
        assert seen == []

    def test_on_result_streams_completions(self):
        seen = []
        run_supervised([(0, 1), (1, 2)], _double, jobs=1,
                       on_result=lambda tid, val: seen.append((tid, val)))
        assert seen == [(0, 2), (1, 4)]


class TestPool:
    def test_parallel_results_complete(self):
        tasks = [(i, i) for i in range(6)]
        report = run_supervised(tasks, _double, jobs=3)
        assert report.results == {i: 2 * i for i in range(6)}

    def test_hang_is_killed_at_deadline_and_failed(self):
        report = run_supervised(
            [(0, {"sleep": 30.0})], _sleeper, jobs=1, timeout=0.5, retries=0
        )
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert "deadline" in failure.message

    def test_hang_retry_can_succeed(self, tmp_path):
        # first attempt fails fast, second succeeds: proves the respawned
        # worker picks the retry up (marker crosses the process boundary).
        payload = {"marker": str(tmp_path / "m")}
        report = run_supervised([("t", payload)], _flaky, jobs=2, timeout=5.0,
                                retries=2)
        assert report.results == {"t": "recovered"}

    def test_chaos_crash_is_survived(self):
        plan = ChaosPlan.from_spec("crash@1")
        try:
            report = run_supervised(
                [(0, 10), (1, 11), (2, 12)], _double, jobs=2, retries=2,
                chaos=plan,
            )
        finally:
            plan.cleanup()
        assert report.results == {0: 20, 1: 22, 2: 24}
        assert report.retried >= 1 and report.failures == []

    def test_chaos_crash_without_retries_is_structured_failure(self):
        plan = ChaosPlan.from_spec("crash@0")
        try:
            report = run_supervised([(0, 10), (1, 11)], _double, jobs=2,
                                    retries=0, chaos=plan)
        finally:
            plan.cleanup()
        assert report.results == {1: 22}
        (failure,) = report.failures
        assert failure.task == 0 and failure.kind == "crash"

    def test_chaos_corrupt_result_retried_to_success(self):
        def validate(value):
            if value == CORRUPT_RESULT:
                raise ValueError("unparseable result")
            return value

        plan = ChaosPlan.from_spec("corrupt@0")
        try:
            report = run_supervised([(0, 21)], _double, jobs=1, retries=1,
                                    chaos=plan, validate=validate)
        finally:
            plan.cleanup()
        assert report.results == {0: 42}
        assert report.retried == 1

    def test_chaos_interrupt_flags_report_and_skips_pending(self):
        plan = ChaosPlan.from_spec("interrupt@0")
        try:
            report = run_supervised([(0, 1), (1, 2)], _double, jobs=1,
                                    chaos=plan, grace_s=0.5)
        finally:
            plan.cleanup()
        assert report.interrupted is True
        assert 0 in report.results

    def test_sigterm_drains_and_interrupts(self):
        timer = threading.Timer(0.6, signal.raise_signal, args=(signal.SIGTERM,))
        timer.start()
        try:
            # timeout forces pool mode, where SIGTERM is delivered as an
            # interrupt; it is far longer than the test needs.
            report = run_supervised(
                [(0, {"sleep": 30.0})], _sleeper, jobs=1, timeout=60.0,
                retries=0, grace_s=0.3,
            )
        finally:
            timer.cancel()
        assert report.interrupted is True
        assert report.results == {}


class TestChaosPlan:
    def test_bad_token_rejected(self):
        with pytest.raises(ConfigError):
            ChaosPlan.from_spec("explode@3")
        with pytest.raises(ConfigError):
            ChaosPlan.from_spec("crash3")
        with pytest.raises(ConfigError):
            ChaosPlan.from_spec("   ")

    def test_each_fault_fires_once(self, tmp_path):
        plan = ChaosPlan("corrupt@7", tmp_path)
        assert plan.after_task(7, "real") == CORRUPT_RESULT
        assert plan.after_task(7, "real") == "real"
        assert plan.after_task(8, "real") == "real"

    def test_interrupt_claim_is_once(self, tmp_path):
        plan = ChaosPlan("interrupt@x", tmp_path)
        assert plan.wants_interrupt("x") is True
        assert plan.wants_interrupt("x") is False
        assert plan.wants_interrupt("y") is False


class TestAdaptiveBatch:
    def test_targets_four_batches_per_worker(self):
        # ceil(total / (workers * 4)), so ~4 dispatch rounds per worker.
        assert adaptive_batch(16, 4) == 1
        assert adaptive_batch(17, 4) == 2
        assert adaptive_batch(320, 4) == 20

    def test_floor_is_one(self):
        assert adaptive_batch(0, 4) == 1
        assert adaptive_batch(1, 8) == 1

    def test_cap_bounds_queue_head_blocking(self):
        assert adaptive_batch(10_000, 1) == MAX_BATCH


class TestBatching:
    def test_invalid_batch_rejected(self):
        for bad in (0, -3, "sometimes", 2.5):
            with pytest.raises(ConfigError):
                run_supervised([(0, 1)], _double, jobs=2, timeout=5.0,
                               batch=bad)

    def test_batched_results_match_unbatched(self):
        tasks = [(i, i) for i in range(20)]
        unbatched = run_supervised(tasks, _double, jobs=2, timeout=10.0)
        for batch in (4, "adaptive", MAX_BATCH):
            batched = run_supervised(tasks, _double, jobs=2, timeout=10.0,
                                     batch=batch)
            assert batched.results == unbatched.results
            assert batched.failures == unbatched.failures == []

    def test_single_worker_batch_covers_all_tasks(self):
        tasks = [(i, i) for i in range(7)]
        report = run_supervised(tasks, _double, jobs=1, timeout=10.0, batch=3)
        assert report.results == {i: 2 * i for i in range(7)}

    def test_crash_mid_batch_retries_whole_batch(self):
        """A chaos crash kills the worker mid-batch; the undone tail of
        the batch must be re-dispatched, not lost."""
        plan = ChaosPlan.from_spec("crash@1")
        try:
            report = run_supervised(
                [(i, 10 + i) for i in range(6)], _double, jobs=1, retries=2,
                timeout=10.0, batch=6, chaos=plan,
            )
        finally:
            plan.cleanup()
        assert report.results == {i: 2 * (10 + i) for i in range(6)}
        assert report.retried >= 1 and report.failures == []

    def test_timeout_mid_batch_fails_head_and_abandons_rest(self):
        payloads = [(0, {"sleep": 30.0}), (1, {"sleep": 30.0})]
        report = run_supervised(payloads, _sleeper, jobs=1, retries=0,
                                timeout=1.0, batch=2)
        assert report.results == {}
        failures = {failure.task: failure for failure in report.failures}
        assert set(failures) == {0, 1}
        assert failures[0].kind == failures[1].kind == "timeout"
        assert "deadline" in failures[0].message
        assert "batch abandoned" in failures[1].message

    def test_abandoned_tasks_are_retried_to_success(self, tmp_path):
        """Only the head task is slow: after its deadline kills the
        batch, the abandoned tail must still complete on retry."""
        marker = tmp_path / "slow-once"
        payloads = [(0, {"marker": str(marker)}), (1, {"marker": "-"})]
        report = run_supervised(payloads, _slow_once, jobs=1, retries=2,
                                timeout=2.0, batch=2)
        assert report.results == {0: "done", 1: "done"}
        assert report.retried >= 1
