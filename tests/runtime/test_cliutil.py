"""The shared CLI surface: one --version string, one exit-code epilog.

Every console script in ``pyproject.toml`` — ``repro-experiments``,
``repro-fuzz``, ``repro-trace``, ``repro-bench``, ``repro-attack`` and
``repro-scan`` — builds its parser through
:func:`repro.runtime.cliutil.build_parser`, so all six tools present the
same ``--version`` format and the same documented 0/1/2/3 contract.
``_CLIS`` is cross-checked against the ``[project.scripts]`` table so a
new entry point cannot ship without joining the shared surface.
"""

import os
import re
from pathlib import Path

import pytest

from repro import __version__
from repro.cpu import engine as engine_mod
from repro.runtime.cliutil import (
    EXIT_CODE_EPILOG,
    apply_engine,
    build_parser,
    version_string,
)

_CLIS = {
    "repro-experiments": "repro.experiments.runner",
    "repro-fuzz": "repro.fuzz.cli",
    "repro-trace": "repro.telemetry.cli",
    "repro-bench": "repro.bench.cli",
    "repro-attack": "repro.attacks.cli",
    "repro-scan": "repro.static.cli",
}


def test_clis_match_pyproject_scripts():
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    text = pyproject.read_text(encoding="utf-8")
    section = text.split("[project.scripts]", 1)[1].split("[", 1)[0]
    declared = dict(re.findall(r'^([\w-]+) = "([\w.]+):main"', section, re.M))
    assert declared == _CLIS


class TestBuildParser:
    def test_epilog_documents_all_four_codes(self):
        for code in range(4):
            assert f"\n  {code}  " in "\n" + EXIT_CODE_EPILOG

    def test_tool_epilog_goes_above_the_contract(self):
        parser = build_parser("x", "desc", epilog="tool specifics")
        assert parser.epilog.index("tool specifics") \
            < parser.epilog.index("exit codes:")

    def test_version_string_carries_package_version(self):
        assert version_string("repro-x") == f"repro-x (repro) {__version__}"


@pytest.mark.parametrize("prog,module", sorted(_CLIS.items()))
class TestUnifiedSurface:
    def _main(self, module):
        import importlib

        return importlib.import_module(module).main

    def test_version_flag(self, prog, module, capsys):
        with pytest.raises(SystemExit) as exc:
            self._main(module)(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == version_string(prog)

    def test_help_states_the_exit_code_contract(self, prog, module, capsys):
        with pytest.raises(SystemExit) as exc:
            self._main(module)(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        for line in EXIT_CODE_EPILOG.splitlines():
            assert line in out

    def test_engine_flag_rejects_unknown_engine(self, prog, module, capsys):
        """Every CLI shares the --engine flag; argparse validates the
        choice before any subcommand logic runs."""
        with pytest.raises(SystemExit) as exc:
            self._main(module)(["--engine", "bogus"])
        assert exc.value.code == 2
        assert "--engine" in capsys.readouterr().err


@pytest.fixture
def restore_engine_default():
    yield
    engine_mod.set_default_engine(None)


class TestEngineFlag:
    def test_parser_offers_registered_engines(self):
        parser = build_parser("x", "desc")
        args = parser.parse_args(["--engine", "compiled"])
        assert args.engine == "compiled"
        assert parser.parse_args([]).engine is None

    def test_apply_engine_sets_process_default(self, restore_engine_default):
        parser = build_parser("x", "desc")
        apply_engine(parser.parse_args(["--engine", "compiled"]))
        assert engine_mod.default_engine() == "compiled"
        # Mirrored into the environment so pool workers inherit it.
        assert os.environ.get(engine_mod.ENGINE_ENV_VAR) == "compiled"

    def test_apply_engine_without_flag_keeps_default(
        self, restore_engine_default
    ):
        engine_mod.set_default_engine(None)
        parser = build_parser("x", "desc")
        apply_engine(parser.parse_args([]))
        assert engine_mod.default_engine() == engine_mod.ENGINES[0]
