"""Cross-stack integration: the paper's arc on a single machine.

Reverse-engineer the predictors black-box, mount the attack, enable the
mitigation, watch the attack die — all against one simulated platform.
"""

import pytest

from repro.attacks.spectre_ctl import SpectreCTL
from repro.core.config import ZEN3_MODELS
from repro.cpu.machine import Machine
from repro.revng.report import ReverseEngineeringCampaign
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier


class TestFullStory:
    def test_reverse_engineer_then_attack_then_mitigate(self):
        # Act I: black-box reverse engineering.
        campaign = ReverseEngineeringCampaign(Machine(seed=7007))
        dossier = campaign.run(
            validation_sequences=4,
            psfp_sizes=(11, 12),
            ssbp_sizes=(16,),
            eviction_trials=4,
            collision_pairs=32,
        )
        assert dossier.psfp_entries == 12
        assert dossier.hash_stride == 12

        # Act II: the attack, on a fresh machine of the same model.
        attack = SpectreCTL(machine=Machine(seed=7008))
        attack.find_collisions()
        report = attack.leak(b"\x5c")
        assert report.recovered == b"\x5c"

        # Act III: SSBD kills both the probing and the attack.
        mitigated = Machine(seed=7009)
        mitigated.core.set_ssbd(True)
        harness = StldHarness(machine=mitigated)
        classifier = TimingClassifier(harness)
        classifier.calibrate()
        assert classifier.margin() < 2.0  # levels collapsed: nothing to probe


class TestAllPlatforms:
    """Section III-D.3: all four TABLE III CPUs share the design."""

    @pytest.mark.parametrize("name", sorted(ZEN3_MODELS))
    def test_state_machine_identical_across_platforms(self, name):
        machine = Machine(model=ZEN3_MODELS[name], seed=11)
        harness = StldHarness(machine=machine)
        from repro.revng.sequences import format_types

        assert format_types(harness.run_events("7n, a, 7n")) == "7H, G, 4E, 3H"

    @pytest.mark.parametrize("name", sorted(ZEN3_MODELS))
    def test_timing_levels_separable_on_every_platform(self, name):
        machine = Machine(model=ZEN3_MODELS[name], seed=12)
        harness = StldHarness(machine=machine)
        classifier = TimingClassifier(harness)
        calibration = classifier.calibrate()
        slowest = max(calibration.means.values())
        assert classifier.margin() > 2 * slowest * machine.core.model.timer_noise


class TestDeterminism:
    def test_identical_machines_identical_attacks(self):
        def campaign() -> bytes:
            attack = SpectreCTL(machine=Machine(seed=555))
            attack.find_collisions()
            return attack.leak(b"\x77").recovered

        assert campaign() == campaign() == b"\x77"
