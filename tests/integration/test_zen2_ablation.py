"""Ablation: a Zen 2 style core (SSB only, no PSF).

PSF shipped with Zen 3; a Zen 2 baseline isolates which of the paper's
findings are PSF-specific:

* PSF forwarding (types C/D) never occurs;
* the black-box campaign *detects* the absence;
* out-of-place Spectre-STL (built on PSFP) is infeasible;
* Spectre-CTL (built on SSBP alone) still works — consistent with
  Spectre-v4 history, which predates Zen 3.
"""

import pytest

from repro.attacks.spectre_ctl import SpectreCTL
from repro.attacks.spectre_stl import SpectreSTL
from repro.core.config import zen2_model
from repro.core.exec_types import ExecType
from repro.cpu.machine import Machine
from repro.errors import ReproError
from repro.revng.report import ReverseEngineeringCampaign
from repro.revng.stld import StldHarness


def zen2_machine(seed: int = 17) -> Machine:
    return Machine(model=zen2_model(), seed=seed)


class TestZen2Behaviour:
    def test_no_psf_types_ever(self):
        harness = StldHarness(machine=zen2_machine())
        types = harness.run_events("7n, a, 10a, 5n, 5a, 20n")
        assert ExecType.C not in types
        assert ExecType.D not in types

    def test_ssbp_dynamics_survive(self):
        """C3/C4 behave as on Zen 3: three G events charge the entry."""
        harness = StldHarness(machine=zen2_machine())
        types = harness.run_events("7n, a, 7n, a, 7n, a")
        assert types.count(ExecType.G) == 3
        tail = harness.run_events("16n")
        assert tail[:15] == [ExecType.F] * 15

    def test_aliasing_never_forwards_predictively(self):
        """Post-training aliasing pairs stall forever (B), never C."""
        harness = StldHarness(machine=zen2_machine())
        harness.run_events("a, a, a")  # saturate C4, charge C3
        sustained = harness.run_events("10a")
        assert set(sustained) <= {ExecType.B, ExecType.G}


class TestZen2Campaign:
    def test_detector_flags_psf_absence(self):
        campaign = ReverseEngineeringCampaign(zen2_machine())
        assert campaign.detect_psf() is False

    def test_detector_flags_psf_presence_on_zen3(self):
        campaign = ReverseEngineeringCampaign(Machine(seed=18))
        assert campaign.detect_psf() is True

    def test_full_campaign_produces_ssb_only_dossier(self):
        campaign = ReverseEngineeringCampaign(zen2_machine(seed=19))
        dossier = campaign.run(
            validation_sequences=3,
            ssbp_sizes=(16,),
            eviction_trials=4,
            collision_pairs=24,
        )
        assert dossier.psf_present is False
        assert dossier.psfp_entries is None
        assert dossier.hash_stride == 12  # the selection hash is shared
        assert "NOT present" in dossier.summary()


class TestZen2Attacks:
    def test_spectre_stl_is_infeasible(self):
        """No PSFP, no predictive forward, no out-of-place Spectre-STL."""
        attack = SpectreSTL(machine=zen2_machine(seed=20), slide_pages=4)
        with pytest.raises(ReproError):
            attack.find_collision(max_candidates=3)

    def test_spectre_ctl_still_works(self):
        """SSB predates Zen 3; the SSBP-only attack still leaks."""
        attack = SpectreCTL(machine=zen2_machine(seed=21))
        attack.find_collisions()
        report = attack.leak(b"\x66")
        assert report.recovered == b"\x66"
