"""Smoke tests: every shipped example runs to completion.

The heavyweight examples (full attack campaigns, fingerprint datasets)
are exercised through their underlying experiment tests; here we run the
two fast ones end to end and check the others at least import cleanly.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_at_least_six(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 6

    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "7H, G" in out
        assert "expected 15" in out

    def test_covert_channel_demo_runs(self, capsys):
        load_example("covert_channel_demo").main()
        out = capsys.readouterr().out
        assert "received b'hi'" in out
        assert "bit errors: 0/16" in out

    @pytest.mark.parametrize(
        "name",
        [
            "leak_across_processes",
            "reverse_engineer_predictors",
            "evaluate_mitigations",
            "fingerprint_models",
        ],
    )
    def test_heavy_examples_import(self, name):
        module = load_example(name)
        assert callable(module.main)
