"""Tests for the TABLE I state machine, including the paper's sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import C3_MAX, CounterState
from repro.core.exec_types import ExecType
from repro.core.state_machine import (
    PSF_C1_THRESHOLD,
    StateName,
    classify_state,
    g_event_state,
    predict,
    run_sequence,
    transition,
)
from repro.revng.sequences import format_types, to_bools

counter_states = st.builds(
    CounterState,
    c0=st.integers(0, 4),
    c1=st.integers(0, 31),
    c2=st.integers(0, 3),
    c3=st.integers(0, 32),
    c4=st.integers(0, 3),
)


def phi(sequence: str, state: CounterState = CounterState()) -> str:
    """The paper's phi notation: run a sequence, return formatted types."""
    types, _ = run_sequence(state, to_bools(sequence))
    return format_types(types)


class TestPaperSequences:
    """Sequences the paper reports verbatim (Section III-B)."""

    def test_phi_7n_a(self):
        assert phi("7n, a") == "7H, G"

    def test_phi_n_a_7n(self):
        """The sequence that revealed C0 (Section III-B.2)."""
        assert phi("n, a, 7n") == "H, G, 4E, 3H"

    def test_phi_discovering_c4(self):
        """The sequence that revealed C4: after 3 G events, 15 n needed."""
        assert phi("a, 4n, a, 4n, a, 16n") == "G, 4E, G, 4E, G, 15F, H"

    def test_psfp_probe_expectation(self):
        """Section III-D: a trained entry answers phi(5n) = (4E, H)."""
        trained = CounterState(c0=4, c1=16, c2=2, c3=0, c4=3)
        assert phi("5n", trained) == "4E, H"

    def test_evicted_probe_expectation(self):
        """Section III-D: an evicted entry answers phi(5n) = (5H)."""
        assert phi("5n") == "5H"

    def test_ssbp_training_reaches_sticky_state(self):
        """(7n,a,7n,a,7n,a) charges C3 to 15 (Section IV-A training)."""
        _, state = run_sequence(CounterState(), to_bools("7n, a, 7n, a, 7n, a"))
        assert state.c3 == 15
        assert state.c4 == 3

    def test_ssbp_probe_after_training(self):
        """Probing a trained SSBP entry shows a long F tail."""
        _, state = run_sequence(CounterState(), to_bools("7n, a, 7n, a, 7n, a"))
        types, _ = run_sequence(state, to_bools("32n"))
        assert types[:15] == [ExecType.F] * 15
        assert types[-1] is ExecType.H


class TestInitializeState:
    def test_n_is_h_and_keeps_state(self):
        result = transition(CounterState(), aliasing=False)
        assert result.exec_type is ExecType.H
        assert result.state == CounterState()
        assert result.state_name is StateName.INITIALIZE

    def test_a_is_g_and_trains(self):
        result = transition(CounterState(), aliasing=True)
        assert result.exec_type is ExecType.G
        assert result.state == CounterState(c0=4, c1=16, c2=2, c3=0, c4=1)

    def test_third_g_charges_c3(self):
        state = CounterState(c4=2)
        result = transition(state, aliasing=True)
        assert result.state.c3 == 15
        assert result.state.c4 == 3

    def test_g_event_state_saturates_c4(self):
        state = g_event_state(CounterState(c4=3))
        assert state.c4 == 3
        assert state.c3 == 15


class TestBlockState:
    """C0 > 0, C2 = 0, C3 = 0: prediction pinned to aliasing, PSF off."""

    state = CounterState(c0=2, c1=5, c2=0, c3=0, c4=1)

    def test_classified_as_block(self):
        assert classify_state(self.state) is StateName.BLOCK

    def test_n_is_e_no_change(self):
        result = transition(self.state, aliasing=False)
        assert result.exec_type is ExecType.E
        assert result.state == self.state

    def test_a_is_a_no_change(self):
        result = transition(self.state, aliasing=True)
        assert result.exec_type is ExecType.A
        assert result.state == self.state


class TestLoadFromCacheState:
    state = CounterState(c0=0, c1=20, c2=2, c3=0, c4=2)

    def test_classified(self):
        assert classify_state(self.state) is StateName.LOAD_FROM_CACHE

    def test_n_is_h(self):
        result = transition(self.state, aliasing=False)
        assert result.exec_type is ExecType.H
        assert result.state == self.state

    def test_a_is_g_and_retrains(self):
        result = transition(self.state, aliasing=True)
        assert result.exec_type is ExecType.G
        assert result.state.c0 == 4
        assert result.state.c3 == 15  # C4 was 2; increments to 3 first


class TestS1PsfEnabled:
    state = CounterState(c0=3, c1=10, c2=2, c3=0)

    def test_classified(self):
        assert classify_state(self.state) is StateName.S1_PSF_ENABLED

    def test_a_is_c(self):
        result = transition(self.state, aliasing=True)
        assert result.exec_type is ExecType.C
        assert result.state.c1 == 9

    def test_a_bumps_c0_when_c1_mod4_is_3(self):
        state = CounterState(c0=3, c1=11, c2=2, c3=0)  # 11 & 3 == 3
        result = transition(state, aliasing=True)
        assert result.state.c0 == 4

    def test_c0_capped_at_4(self):
        state = CounterState(c0=4, c1=11, c2=2, c3=0)
        result = transition(state, aliasing=True)
        assert result.state.c0 == 4

    def test_n_is_d_with_rollback_updates(self):
        result = transition(self.state, aliasing=False)
        assert result.exec_type is ExecType.D
        assert result.state == self.state.with_updates(c0=2, c1=14, c2=1)

    def test_two_ds_reach_block(self):
        """Section III-B: a block state is triggered after type D occurs
        twice (C2 goes 2 -> 1 -> 0)."""
        state = CounterState(c0=4, c1=4, c2=2, c3=0)
        first = transition(state, aliasing=False)
        assert first.exec_type is ExecType.D
        second = transition(first.state, aliasing=False)
        assert second.exec_type is ExecType.D
        assert classify_state(second.state) is StateName.BLOCK


class TestS1PsfDisabled:
    state = CounterState(c0=3, c1=20, c2=2, c3=0)

    def test_classified(self):
        assert classify_state(self.state) is StateName.S1_PSF_DISABLED

    def test_n_is_e(self):
        result = transition(self.state, aliasing=False)
        assert result.exec_type is ExecType.E
        assert result.state == self.state.with_updates(c0=2, c1=24)

    def test_a_is_a(self):
        result = transition(self.state, aliasing=True)
        assert result.exec_type is ExecType.A
        assert result.state.c1 == 19

    def test_repeated_a_reenables_psf(self):
        """Aliasing executions drain C1 below the PSF threshold."""
        state = self.state
        for _ in range(16):
            state = transition(state, aliasing=True).state
        assert state.c1 <= PSF_C1_THRESHOLD
        assert classify_state(state) is StateName.S1_PSF_ENABLED


class TestS2PsfDisabled:
    state = CounterState(c0=2, c1=20, c2=2, c3=5)

    def test_classified(self):
        assert classify_state(self.state) is StateName.S2_PSF_DISABLED

    def test_n_is_f_and_drains(self):
        result = transition(self.state, aliasing=False)
        assert result.exec_type is ExecType.F
        assert result.state.c3 == 4
        assert result.state.c0 == 1  # amendment 2: C0 decays too

    def test_a_is_b_drains_c3_when_c0_positive(self):
        result = transition(self.state, aliasing=True)
        assert result.exec_type is ExecType.B
        assert result.state.c3 == 4

    def test_a_recharges_c3_when_c0_zero(self):
        state = CounterState(c0=0, c1=5, c2=0, c3=5)
        result = transition(state, aliasing=True)
        assert result.exec_type is ExecType.B
        assert result.state.c3 == min(5 + 16, C3_MAX)

    def test_gap_state_falls_back_here(self):
        """TABLE I leaves C0>0, C2=0, C3>0 unlisted; we treat it as S2."""
        gap = CounterState(c0=2, c1=5, c2=0, c3=3)
        assert classify_state(gap) is StateName.S2_PSF_DISABLED


class TestS2PsfEnabled:
    state = CounterState(c0=3, c1=8, c2=2, c3=6)

    def test_classified(self):
        assert classify_state(self.state) is StateName.S2_PSF_ENABLED

    def test_n_is_d_drains_c3_by_two(self):
        result = transition(self.state, aliasing=False)
        assert result.exec_type is ExecType.D
        assert result.state == self.state.with_updates(c0=2, c1=12, c3=4)

    def test_a_is_c(self):
        result = transition(self.state, aliasing=True)
        assert result.exec_type is ExecType.C
        assert result.state.c3 == 5


class TestPredict:
    def test_initial_predicts_non_aliasing(self):
        pred = predict(CounterState())
        assert not pred.aliasing
        assert not pred.psf_forward

    def test_aliasing_iff_c0_or_c3(self):
        assert predict(CounterState(c0=1)).aliasing
        assert predict(CounterState(c3=1)).aliasing
        assert not predict(CounterState(c1=20, c2=2)).aliasing

    def test_psf_needs_all_three(self):
        assert predict(CounterState(c0=1, c1=3, c2=1)).psf_forward
        assert not predict(CounterState(c0=0, c1=3, c2=1)).psf_forward
        assert not predict(CounterState(c0=1, c1=13, c2=1)).psf_forward
        assert not predict(CounterState(c0=1, c1=3, c2=0)).psf_forward

    @given(counter_states)
    def test_sticky_mirrors_c3(self, state):
        assert predict(state).sticky == (state.c3 > 0)


class TestTotalityAndInvariants:
    @given(counter_states)
    def test_classify_is_total(self, state):
        assert classify_state(state) in StateName

    @given(counter_states, st.booleans())
    def test_transition_is_total_and_bounded(self, state, aliasing):
        result = transition(state, aliasing)
        nxt = result.state
        assert 0 <= nxt.c0 <= 4
        assert 0 <= nxt.c1 <= 31
        assert 0 <= nxt.c2 <= 3
        assert 0 <= nxt.c3 <= 32
        assert 0 <= nxt.c4 <= 3

    @given(counter_states, st.booleans())
    def test_exec_type_consistent_with_prediction(self, state, aliasing):
        pred = predict(state)
        result = transition(state, aliasing)
        assert result.exec_type.predicted_aliasing == pred.aliasing
        assert result.exec_type.truth_aliasing == aliasing
        assert result.exec_type.psf_forwarded == (pred.psf_forward and pred.aliasing)

    @given(counter_states)
    def test_c4_never_decreases(self, state):
        """C4 only counts G events; nothing ever drains it."""
        for aliasing in (False, True):
            assert transition(state, aliasing).state.c4 >= state.c4

    @given(counter_states)
    def test_n_never_raises_c3(self, state):
        assert transition(state, aliasing=False).state.c3 <= state.c3

    @settings(max_examples=25)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_long_random_sequences_terminate_in_valid_states(self, inputs):
        types, state = run_sequence(CounterState(), inputs)
        assert len(types) == len(inputs)
        assert classify_state(state) in StateName

    @given(counter_states)
    def test_long_n_run_flips_prediction_unless_blocked(self, state):
        """Enough non-aliasing executions flip the prediction back (at most
        15n once C4 saturates, plus the C0 decay) — except in the absorbing
        Block state, where prediction is pinned to aliasing forever."""
        for _ in range(64):
            state = transition(state, aliasing=False).state
        if classify_state(state) is StateName.BLOCK:
            assert predict(state).aliasing
        else:
            assert not predict(state).aliasing

    def test_block_state_is_absorbing(self):
        """Section III-B: once blocked, neither input ever unblocks."""
        state = CounterState(c0=2, c1=7, c2=0, c3=0)
        for aliasing in (True, False, True, True, False):
            state = transition(state, aliasing).state
            assert classify_state(state) is StateName.BLOCK


class TestRollforwardDeterminism:
    @given(counter_states, st.lists(st.booleans(), max_size=64))
    def test_runs_are_deterministic(self, state, inputs):
        first = run_sequence(state, inputs)
        second = run_sequence(state, inputs)
        assert first == second
