"""Unit tests for the PSFP table (12-entry fully associative, LRU)."""

import pytest

from repro.core.psfp import PSFP_ENTRIES, Psfp
from repro.errors import ConfigError


def trained(psfp: Psfp, store: int, load: int) -> None:
    psfp.update(store, load, c0=4, c1=16, c2=2)


class TestBasics:
    def test_default_capacity_matches_paper(self):
        assert Psfp().capacity == PSFP_ENTRIES == 12

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Psfp(entries=0)

    def test_miss_reads_zero(self):
        assert Psfp().counters(1, 2) == (0, 0, 0)

    def test_update_then_read(self):
        psfp = Psfp()
        psfp.update(1, 2, 4, 16, 2)
        assert psfp.counters(1, 2) == (4, 16, 2)

    def test_keyed_by_both_tags(self):
        psfp = Psfp()
        psfp.update(1, 2, 4, 16, 2)
        assert psfp.counters(2, 1) == (0, 0, 0)
        assert psfp.counters(1, 3) == (0, 0, 0)
        assert psfp.counters(3, 2) == (0, 0, 0)

    def test_zero_write_frees_entry(self):
        psfp = Psfp()
        psfp.update(1, 2, 4, 16, 2)
        psfp.update(1, 2, 0, 0, 0)
        assert psfp.occupancy == 0

    def test_flush_reports_count(self):
        psfp = Psfp()
        trained(psfp, 1, 1)
        trained(psfp, 2, 2)
        assert psfp.flush() == 2
        assert psfp.occupancy == 0

    def test_non_allocating_update_dropped(self):
        psfp = Psfp()
        psfp.update(1, 2, 0, 4, 0, allocate=False)
        assert psfp.occupancy == 0
        assert psfp.counters(1, 2) == (0, 0, 0)

    def test_non_allocating_update_applies_to_live_entry(self):
        psfp = Psfp()
        trained(psfp, 1, 2)
        psfp.update(1, 2, 3, 20, 2, allocate=False)
        assert psfp.counters(1, 2) == (3, 20, 2)


class TestLruEviction:
    def test_eviction_below_capacity_never_happens(self):
        psfp = Psfp()
        trained(psfp, 0, 0)  # the base entry
        for k in range(1, PSFP_ENTRIES):  # 11 more entries fills the table
            trained(psfp, k, k)
        assert psfp.contains(0, 0)
        assert psfp.evictions == 0

    def test_twelfth_new_entry_evicts_the_base(self):
        """Fig 5: PSFP eviction is abrupt at eviction size 12."""
        psfp = Psfp()
        trained(psfp, 0, 0)
        for k in range(1, PSFP_ENTRIES + 1):  # 12 distinct priming entries
            trained(psfp, k, k)
        assert not psfp.contains(0, 0)
        assert psfp.evictions == 1

    def test_lookup_refreshes_recency(self):
        psfp = Psfp(entries=2)
        trained(psfp, 0, 0)
        trained(psfp, 1, 1)
        psfp.lookup(0, 0)  # base becomes most recent
        trained(psfp, 2, 2)  # evicts (1, 1), not the base
        assert psfp.contains(0, 0)
        assert not psfp.contains(1, 1)

    def test_contains_does_not_refresh(self):
        psfp = Psfp(entries=2)
        trained(psfp, 0, 0)
        trained(psfp, 1, 1)
        psfp.contains(0, 0)  # must NOT touch recency
        trained(psfp, 2, 2)
        assert not psfp.contains(0, 0)

    def test_occupancy_never_exceeds_capacity(self):
        psfp = Psfp()
        for k in range(50):
            trained(psfp, k, k)
        assert psfp.occupancy == PSFP_ENTRIES

    def test_entries_snapshot_lru_order(self):
        psfp = Psfp()
        trained(psfp, 1, 1)
        trained(psfp, 2, 2)
        snapshot = psfp.entries()
        assert [e.key for e in snapshot] == [(1, 1), (2, 2)]

    def test_repr_shows_occupancy(self):
        psfp = Psfp()
        trained(psfp, 1, 1)
        assert "1/12" in repr(psfp)
