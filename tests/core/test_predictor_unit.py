"""Tests for the combined predictor unit (PSFP + SSBP + TABLE I)."""

import pytest

from repro.core.counters import CounterState
from repro.core.exec_types import ExecType
from repro.core.predictor_unit import PredictorUnit
from repro.core.spec_ctrl import SpecCtrl
from repro.core.state_machine import run_sequence
from repro.revng.sequences import to_bools


def run_unit(unit: PredictorUnit, sequence: str, store=0, load=0):
    """Run a plain sequence through the unit at fixed hashes."""
    return [
        unit.access(store, load, aliasing).exec_type
        for aliasing in to_bools(sequence)
    ]


class TestEquivalenceWithPureStateMachine:
    @pytest.mark.parametrize(
        "sequence",
        ["7n, a", "n, a, 7n", "a, 4n, a, 4n, a, 16n", "7n, a, 7n, a, 7n, a, 32n"],
    )
    def test_fixed_pair_matches_reference_model(self, sequence):
        unit = PredictorUnit()
        got = run_unit(unit, sequence)
        want, _ = run_sequence(CounterState(), to_bools(sequence))
        assert got == want

    def test_state_for_reflects_counters(self):
        unit = PredictorUnit()
        run_unit(unit, "7n, a")
        assert unit.state_for(0, 0) == CounterState(c0=4, c1=16, c2=2, c3=0, c4=1)


class TestSelectionKeys:
    def test_psfp_keyed_by_both_hashes(self):
        """A different store hash selects a fresh PSFP entry (TABLE II, C0)."""
        unit = PredictorUnit()
        run_unit(unit, "7n, a")  # train (0, 0)
        state = unit.state_for(store_hash=1, load_hash=0)
        assert state.psfp_part == (0, 0, 0)

    def test_ssbp_keyed_by_load_hash_only(self):
        """C3/C4 are shared across store hashes (TABLE II, C3/C4 rows)."""
        unit = PredictorUnit()
        run_unit(unit, "7n, a, 7n, a, 7n, a")  # charge C3 via load hash 0
        state = unit.state_for(store_hash=9, load_hash=0)
        assert state.c3 == 15
        assert state.c4 == 3

    def test_different_load_hash_sees_nothing(self):
        unit = PredictorUnit()
        run_unit(unit, "7n, a, 7n, a, 7n, a")
        state = unit.state_for(store_hash=0, load_hash=1)
        assert state == CounterState()

    def test_c4_accumulates_across_store_hashes(self):
        """G events from different store IPAs still count toward the same
        SSBP entry (TABLE II C4 row: three out-of-place Gs charge C3)."""
        unit = PredictorUnit()
        for store in (1, 2):
            run_unit(unit, "7n, a", store=store, load=0)
            run_unit(unit, "39n", store=store, load=0)
        run_unit(unit, "7n, a", store=3, load=0)
        assert unit.state_for(0, 0).c3 == 15
        # and the paper's probe: phi(35n) = (15F, 20H) at yet another store
        types = run_unit(unit, "35n", store=4, load=0)
        from repro.revng.sequences import format_types

        assert format_types(types) == "15F, 20H"


class TestAllocationPolicy:
    def test_n_only_sequences_allocate_nothing(self):
        unit = PredictorUnit()
        for load in range(30):
            run_unit(unit, "10n", store=load, load=load)
        assert unit.psfp.occupancy == 0
        assert unit.ssbp.occupancy == 0

    def test_g_event_allocates_both(self):
        unit = PredictorUnit()
        result = unit.access(3, 7, aliasing=True)
        assert result.exec_type is ExecType.G
        assert unit.psfp.occupancy == 1
        assert unit.ssbp.occupancy == 1


class TestFlushSemantics:
    def _train(self, unit):
        run_unit(unit, "7n, a, 7n, a, 7n, a")

    def test_context_switch_flushes_psfp_only(self):
        unit = PredictorUnit()
        self._train(unit)
        unit.on_context_switch()
        assert unit.psfp.occupancy == 0
        assert unit.ssbp.occupancy == 1
        assert unit.state_for(0, 0).c3 == 15

    def test_context_switch_with_mitigation_flushes_ssbp(self):
        unit = PredictorUnit()
        self._train(unit)
        unit.on_context_switch(flush_ssbp=True)
        assert unit.ssbp.occupancy == 0

    def test_suspend_flushes_both(self):
        unit = PredictorUnit()
        self._train(unit)
        unit.on_suspend()
        assert unit.psfp.occupancy == 0
        assert unit.ssbp.occupancy == 0

    def test_reset_clears_stats(self):
        unit = PredictorUnit()
        self._train(unit)
        unit.reset()
        assert not unit.exec_type_counts


class TestSsbd:
    def test_ssbd_pins_block_state(self):
        """Section VI-A: with SSBD, phi(n) = E and phi(a) = A, always."""
        spec = SpecCtrl()
        spec.ssbd = True
        unit = PredictorUnit(spec_ctrl=spec)
        assert run_unit(unit, "5n") == [ExecType.E] * 5
        assert run_unit(unit, "5a") == [ExecType.A] * 5

    def test_ssbd_blocks_learning(self):
        spec = SpecCtrl()
        spec.ssbd = True
        unit = PredictorUnit(spec_ctrl=spec)
        run_unit(unit, "7n, a, 7n, a, 7n, a")
        assert unit.psfp.occupancy == 0
        assert unit.ssbp.occupancy == 0

    def test_ssbd_prediction_always_aliasing(self):
        spec = SpecCtrl()
        spec.ssbd = True
        unit = PredictorUnit(spec_ctrl=spec)
        pred = unit.predict(0, 0)
        assert pred.aliasing and not pred.psf_forward

    def test_ssbd_can_be_toggled_off(self):
        spec = SpecCtrl()
        spec.ssbd = True
        unit = PredictorUnit(spec_ctrl=spec)
        spec.ssbd = False
        assert run_unit(unit, "n") == [ExecType.H]

    def test_psfd_does_not_stop_the_predictors(self):
        """Section VI-A: PSFD is observable but ineffective."""
        spec = SpecCtrl()
        spec.psfd = True
        unit = PredictorUnit(spec_ctrl=spec)
        got = run_unit(unit, "7n, a, 7n")
        want, _ = run_sequence(CounterState(), to_bools("7n, a, 7n"))
        assert got == want


class TestStats:
    def test_exec_type_counts(self):
        unit = PredictorUnit()
        run_unit(unit, "7n, a")
        assert unit.exec_type_counts[ExecType.H] == 7
        assert unit.exec_type_counts[ExecType.G] == 1

    def test_repr(self):
        unit = PredictorUnit()
        text = repr(unit)
        assert "psfp=0/12" in text
        assert "ssbd=False" in text
