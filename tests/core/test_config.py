"""Tests for platform configuration (TABLE III models)."""

import pytest

from repro.core.config import CpuModel, LatencyModel, ZEN3_MODELS, default_model, get_model
from repro.errors import ConfigError


class TestRegistry:
    def test_four_platforms(self):
        assert len(ZEN3_MODELS) == 4

    def test_names_match_table_iii(self):
        assert set(ZEN3_MODELS) == {
            "ryzen9-5900x",
            "epyc-7543",
            "ryzen5-5600g",
            "ryzen7-7735hs",
        }

    def test_microcodes_match_table_iii(self):
        assert ZEN3_MODELS["ryzen9-5900x"].microcode == 0xA201205
        assert ZEN3_MODELS["epyc-7543"].microcode == 0xA001173
        assert ZEN3_MODELS["ryzen5-5600g"].microcode == 0xA50000D
        assert ZEN3_MODELS["ryzen7-7735hs"].microcode == 0xA404102

    def test_7735hs_is_zen3_plus(self):
        assert ZEN3_MODELS["ryzen7-7735hs"].microarch == "Zen 3+"

    def test_default_model(self):
        assert default_model().name == "ryzen9-5900x"

    def test_get_model_error_lists_names(self):
        with pytest.raises(ConfigError, match="ryzen9-5900x"):
            get_model("pentium3")

    def test_all_share_predictor_design(self):
        """Section III-D.3: all four CPUs share the same PSFP/SSBP design."""
        designs = {
            (m.psfp_entries, m.ssbp_sets, m.ssbp_ways) for m in ZEN3_MODELS.values()
        }
        assert designs == {(12, 8, 2)}


class TestCpuModel:
    def test_with_overrides(self):
        single = default_model().with_overrides(smt_threads=1)
        assert single.smt_threads == 1
        assert single.name == default_model().name

    def test_invalid_clock(self):
        with pytest.raises(ConfigError):
            CpuModel(name="x", clock_ghz=0)

    def test_invalid_smt(self):
        with pytest.raises(ConfigError):
            CpuModel(name="x", smt_threads=4)

    def test_invalid_noise(self):
        with pytest.raises(ConfigError):
            CpuModel(name="x", timer_noise=0.5)

    def test_cycles_per_second(self):
        model = CpuModel(name="x", clock_ghz=2.0)
        assert model.cycles_per_second == 2.0e9


class TestLatencyModel:
    def test_defaults_are_ordered(self):
        lat = LatencyModel()
        assert lat.l1_hit < lat.l2_hit < lat.l3_hit < lat.memory

    def test_inverted_hierarchy_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(l1_hit=50, l2_hit=10)

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(alu=0)
