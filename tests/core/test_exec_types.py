"""Unit tests for execution types A--H and their PMC profiles (Fig 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exec_types import (
    PMC_PROFILE,
    TIMING_CLASS,
    ExecType,
    TimingClass,
    classify_exec_type,
)


class TestExecTypeSemantics:
    @pytest.mark.parametrize(
        "exec_type, predicted, truth",
        [
            (ExecType.A, True, True),
            (ExecType.B, True, True),
            (ExecType.C, True, True),
            (ExecType.D, True, False),
            (ExecType.E, True, False),
            (ExecType.F, True, False),
            (ExecType.G, False, True),
            (ExecType.H, False, False),
        ],
    )
    def test_prediction_and_truth(self, exec_type, predicted, truth):
        assert exec_type.predicted_aliasing == predicted
        assert exec_type.truth_aliasing == truth

    def test_rollback_only_d_and_g(self):
        assert {t for t in ExecType if t.rollback} == {ExecType.D, ExecType.G}

    def test_psf_forward_only_c_and_d(self):
        assert {t for t in ExecType if t.psf_forwarded} == {ExecType.C, ExecType.D}

    def test_stalled_types(self):
        assert {t for t in ExecType if t.stalled} == {
            ExecType.A,
            ExecType.B,
            ExecType.E,
            ExecType.F,
        }

    def test_mispredicted_matches_paper(self):
        # D, E, F: predicted aliasing but disjoint; G: the reverse.
        assert {t for t in ExecType if t.mispredicted} == {
            ExecType.D,
            ExecType.E,
            ExecType.F,
            ExecType.G,
        }

    @pytest.mark.parametrize(
        "exec_type, source",
        [
            (ExecType.A, "sq"),
            (ExecType.B, "sq"),
            (ExecType.C, "forward"),
            (ExecType.D, "forward"),
            (ExecType.E, "cache"),
            (ExecType.F, "cache"),
            (ExecType.G, "cache"),
            (ExecType.H, "cache"),
        ],
    )
    def test_data_source(self, exec_type, source):
        assert exec_type.data_source == source


class TestTimingClasses:
    def test_six_classes(self):
        assert len(TimingClass) == 6

    def test_every_type_has_a_class(self):
        assert set(TIMING_CLASS) == set(ExecType)

    def test_a_and_b_share_a_class(self):
        assert TIMING_CLASS[ExecType.A] is TIMING_CLASS[ExecType.B]

    def test_e_and_f_share_a_class(self):
        assert TIMING_CLASS[ExecType.E] is TIMING_CLASS[ExecType.F]

    def test_members_roundtrip(self):
        for cls in TimingClass:
            for exec_type in cls.members:
                assert TIMING_CLASS[exec_type] is cls


class TestPmcProfiles:
    def test_sq_stall_tokens_split_by_prediction(self):
        """Fig 2: 42 stall tokens for predicted-aliasing, 21 for bypass."""
        for exec_type, profile in PMC_PROFILE.items():
            expected = 42 if exec_type.predicted_aliasing else 21
            assert profile.sq_stall_tokens == expected

    def test_rollback_types_refetch(self):
        for exec_type in (ExecType.D, ExecType.G):
            profile = PMC_PROFILE[exec_type]
            assert profile.ld_dispatch == 44
            assert profile.l1_itlb_hits_4k == 105
            assert profile.retired_ops == 201

    def test_non_rollback_types_do_not_refetch(self):
        for exec_type in ExecType:
            if not exec_type.rollback:
                profile = PMC_PROFILE[exec_type]
                assert profile.ld_dispatch == 41
                assert profile.l1_itlb_hits_4k == 83
                assert profile.retired_ops == 200

    def test_store_to_load_forward_counts(self):
        """Fig 2: 7 STLF events when data came from the SQ (or on replay)."""
        assert PMC_PROFILE[ExecType.A].store_to_load_forward == 7
        assert PMC_PROFILE[ExecType.B].store_to_load_forward == 7
        assert PMC_PROFILE[ExecType.G].store_to_load_forward == 7
        assert PMC_PROFILE[ExecType.C].store_to_load_forward == 6
        assert PMC_PROFILE[ExecType.H].store_to_load_forward == 6


class TestClassify:
    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans())
    def test_classification_consistent_with_inputs(
        self, predicted, psf, truth, sticky
    ):
        exec_type = classify_exec_type(predicted, psf and predicted, truth, sticky)
        assert exec_type.predicted_aliasing == predicted
        assert exec_type.truth_aliasing == truth

    def test_psf_correct_is_c(self):
        assert classify_exec_type(True, True, True, False) is ExecType.C

    def test_psf_wrong_is_d(self):
        assert classify_exec_type(True, True, False, True) is ExecType.D

    def test_sticky_splits_a_from_b(self):
        assert classify_exec_type(True, False, True, False) is ExecType.A
        assert classify_exec_type(True, False, True, True) is ExecType.B

    def test_sticky_splits_e_from_f(self):
        assert classify_exec_type(True, False, False, False) is ExecType.E
        assert classify_exec_type(True, False, False, True) is ExecType.F

    def test_bypass_outcomes(self):
        assert classify_exec_type(False, False, True, False) is ExecType.G
        assert classify_exec_type(False, False, False, False) is ExecType.H
