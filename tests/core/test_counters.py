"""Unit tests for saturating counters and the five-counter state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counters import (
    C0_MAX,
    C1_MAX,
    C2_MAX,
    C3_MAX,
    C4_MAX,
    CounterState,
    SaturatingCounter,
    clamp,
)


class TestClamp:
    def test_inside_range(self):
        assert clamp(3, 0, 5) == 3

    def test_below(self):
        assert clamp(-2, 0, 5) == 0

    def test_above(self):
        assert clamp(9, 0, 5) == 5

    def test_boundaries(self):
        assert clamp(0, 0, 5) == 0
        assert clamp(5, 0, 5) == 5

    @given(st.integers(-1000, 1000), st.integers(-50, 50), st.integers(0, 100))
    def test_result_always_in_range(self, value, lo, span):
        hi = lo + span
        assert lo <= clamp(value, lo, hi) <= hi


class TestSaturatingCounter:
    def test_initial_value(self):
        assert SaturatingCounter(2, maximum=4).value == 2

    def test_initial_value_clamped(self):
        assert SaturatingCounter(99, maximum=4).value == 4

    def test_add_saturates(self):
        assert SaturatingCounter(3, maximum=4).add(10).value == 4

    def test_sub_saturates_at_minimum(self):
        assert SaturatingCounter(1, maximum=4).sub(10).value == 0

    def test_add_then_sub(self):
        counter = SaturatingCounter(maximum=7)
        counter.add(3).sub(1)
        assert counter.value == 2

    def test_reset(self):
        assert SaturatingCounter(5, maximum=7).reset().value == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0, minimum=3, maximum=1)

    def test_int_conversion(self):
        assert int(SaturatingCounter(3, maximum=4)) == 3

    def test_equality_with_int(self):
        assert SaturatingCounter(3, maximum=4) == 3

    def test_equality_with_counter(self):
        assert SaturatingCounter(3, maximum=4) == SaturatingCounter(3, maximum=9)

    def test_setter_clamps(self):
        counter = SaturatingCounter(maximum=4)
        counter.value = 100
        assert counter.value == 4

    @given(st.lists(st.integers(-10, 10), max_size=50))
    def test_never_escapes_bounds(self, deltas):
        counter = SaturatingCounter(maximum=4)
        for delta in deltas:
            counter.add(delta)
            assert 0 <= counter.value <= 4


counter_states = st.builds(
    CounterState,
    c0=st.integers(-2, C0_MAX + 2),
    c1=st.integers(-2, C1_MAX + 2),
    c2=st.integers(-2, C2_MAX + 2),
    c3=st.integers(-2, C3_MAX + 2),
    c4=st.integers(-2, C4_MAX + 2),
)


class TestCounterState:
    def test_default_is_initial(self):
        assert CounterState().is_initial

    def test_nonzero_not_initial(self):
        assert not CounterState(c4=1).is_initial

    def test_clamps_on_construction(self):
        state = CounterState(c0=99, c1=-5, c3=100)
        assert state.c0 == C0_MAX
        assert state.c1 == 0
        assert state.c3 == C3_MAX

    def test_with_updates_clamps(self):
        state = CounterState().with_updates(c1=500)
        assert state.c1 == C1_MAX

    def test_with_updates_preserves_others(self):
        state = CounterState(c0=2, c2=1).with_updates(c1=5)
        assert (state.c0, state.c1, state.c2) == (2, 5, 1)

    def test_parts(self):
        state = CounterState(c0=1, c1=2, c2=3, c3=4, c4=1)
        assert state.psfp_part == (1, 2, 3)
        assert state.ssbp_part == (4, 1)

    def test_as_tuple(self):
        assert CounterState(c0=1, c3=2).as_tuple() == (1, 0, 0, 2, 0)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            CounterState().c0 = 1  # type: ignore[misc]

    def test_str_mentions_all_counters(self):
        text = str(CounterState(c0=4, c1=16, c2=2, c3=15, c4=3))
        for fragment in ("C0=4", "C1=16", "C2=2", "C3=15", "C4=3"):
            assert fragment in text

    @given(counter_states)
    def test_always_within_bounds(self, state):
        assert 0 <= state.c0 <= C0_MAX
        assert 0 <= state.c1 <= C1_MAX
        assert 0 <= state.c2 <= C2_MAX
        assert 0 <= state.c3 <= C3_MAX
        assert 0 <= state.c4 <= C4_MAX

    @given(counter_states)
    def test_hashable_and_equal_by_value(self, state):
        clone = CounterState(*state.as_tuple())
        assert clone == state
        assert hash(clone) == hash(state)
