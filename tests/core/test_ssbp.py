"""Unit tests for the SSBP table (8 sets x 2 ways, gradual eviction)."""

import random

import pytest

from repro.core.hashfn import HASH_BITS
from repro.core.ssbp import SSBP_SETS, SSBP_WAYS, Ssbp, set_index
from repro.errors import ConfigError


def trained(ssbp: Ssbp, load_hash: int, c3: int = 15, c4: int = 3) -> None:
    ssbp.update(load_hash, c3, c4)


class TestSetIndex:
    def test_in_range(self):
        for load_hash in range(1 << HASH_BITS):
            assert 0 <= set_index(load_hash) < SSBP_SETS

    def test_roughly_uniform(self):
        counts = [0] * SSBP_SETS
        for load_hash in range(1 << HASH_BITS):
            counts[set_index(load_hash)] += 1
        expected = (1 << HASH_BITS) / SSBP_SETS
        assert all(abs(c - expected) / expected < 0.01 for c in counts)

    def test_deterministic(self):
        assert set_index(0xABC) == set_index(0xABC)


class TestBasics:
    def test_default_geometry(self):
        ssbp = Ssbp()
        assert ssbp.capacity == SSBP_SETS * SSBP_WAYS == 16

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            Ssbp(sets=0)
        with pytest.raises(ConfigError):
            Ssbp(ways=0)

    def test_miss_reads_zero(self):
        assert Ssbp().counters(5) == (0, 0)

    def test_update_then_read(self):
        ssbp = Ssbp()
        ssbp.update(5, 15, 3)
        assert ssbp.counters(5) == (15, 3)

    def test_keyed_by_full_hash_not_set(self):
        ssbp = Ssbp()
        # Find two hashes in the same set.
        a = 0
        b = next(h for h in range(1, 1 << HASH_BITS) if set_index(h) == set_index(a))
        ssbp.update(a, 10, 1)
        assert ssbp.counters(b) == (0, 0)

    def test_zero_write_frees_entry(self):
        ssbp = Ssbp()
        trained(ssbp, 5)
        ssbp.update(5, 0, 0)
        assert ssbp.occupancy == 0

    def test_c4_only_entry_is_kept(self):
        """C4 persists between G events even while C3 is zero."""
        ssbp = Ssbp()
        ssbp.update(5, 0, 2)
        assert ssbp.counters(5) == (0, 2)

    def test_flush(self):
        ssbp = Ssbp()
        trained(ssbp, 1)
        trained(ssbp, 2)
        assert ssbp.flush() == 2
        assert ssbp.occupancy == 0

    def test_non_allocating_update_dropped(self):
        ssbp = Ssbp()
        ssbp.update(5, 15, 0, allocate=False)
        assert ssbp.counters(5) == (0, 0)

    def test_non_allocating_update_applies_to_live_entry(self):
        ssbp = Ssbp()
        trained(ssbp, 5)
        ssbp.update(5, 14, 3, allocate=False)
        assert ssbp.counters(5) == (14, 3)


class TestEvictionWithinSet:
    def _same_set_hashes(self, count: int) -> list[int]:
        target = set_index(0)
        return [h for h in range(1 << HASH_BITS) if set_index(h) == target][:count]

    def test_third_entry_in_a_set_evicts_lru(self):
        ssbp = Ssbp()
        a, b, c = self._same_set_hashes(3)
        trained(ssbp, a)
        trained(ssbp, b)
        trained(ssbp, c)
        assert not ssbp.contains(a)
        assert ssbp.contains(b)
        assert ssbp.contains(c)
        assert ssbp.evictions == 1

    def test_lookup_refreshes_recency(self):
        ssbp = Ssbp()
        a, b, c = self._same_set_hashes(3)
        trained(ssbp, a)
        trained(ssbp, b)
        ssbp.lookup(a)
        trained(ssbp, c)
        assert ssbp.contains(a)
        assert not ssbp.contains(b)


class TestGradualEvictionCurve:
    """The Fig 5 SSBP property: >50% eviction at 16, ~90% at 32."""

    def _eviction_rate(self, prime_count: int, trials: int = 400) -> float:
        rng = random.Random(1234 + prime_count)
        evicted = 0
        for _ in range(trials):
            ssbp = Ssbp()
            base = rng.randrange(1 << HASH_BITS)
            trained(ssbp, base)
            primes = rng.sample(
                [h for h in range(1 << HASH_BITS) if h != base], prime_count
            )
            for h in primes:
                trained(ssbp, h)
            if not ssbp.contains(base):
                evicted += 1
        return evicted / trials

    def test_small_sets_rarely_evict(self):
        assert self._eviction_rate(4) < 0.25

    def test_sixteen_exceeds_half(self):
        assert self._eviction_rate(16) > 0.50

    def test_thirty_two_reaches_ninety_percent(self):
        assert self._eviction_rate(32) > 0.85

    def test_monotonically_harder_to_survive(self):
        rates = [self._eviction_rate(k, trials=250) for k in (4, 8, 16, 32)]
        assert rates == sorted(rates)
