"""Unit tests for the IPA-selection hash (paper Section III-C.2, Fig 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hashfn import (
    HASH_BITS,
    IPA_BITS,
    PAGE_SIZE,
    STRIDE,
    collision_offset,
    hash_from_frame_offset,
    ipa_hash,
    xor_profile,
)

ipas = st.integers(0, (1 << IPA_BITS) - 1)
frames = st.integers(0, (1 << (IPA_BITS - 12)) - 1)
hashes = st.integers(0, (1 << HASH_BITS) - 1)


class TestIpaHash:
    def test_zero(self):
        assert ipa_hash(0) == 0

    def test_single_low_bit(self):
        assert ipa_hash(1) == 1

    def test_bit_twelve_folds_onto_bit_zero(self):
        assert ipa_hash(1 << 12) == 1

    def test_stride_group_cancels(self):
        # Bits 1, 13, 25, 37 all set: they XOR to zero on output bit 1.
        ipa = (1 << 1) | (1 << 13) | (1 << 25) | (1 << 37)
        assert ipa_hash(ipa) == 0

    def test_example_from_paper_stride(self):
        # Output bit i folds IPA bits i, i+12, i+24, i+36.
        for i in range(HASH_BITS):
            assert ipa_hash(1 << i) == 1 << i
            assert ipa_hash(1 << (i + STRIDE)) == 1 << i
            assert ipa_hash(1 << (i + 2 * STRIDE)) == 1 << i
            assert ipa_hash(1 << (i + 3 * STRIDE)) == 1 << i

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ipa_hash(-1)

    def test_bits_beyond_48_ignored(self):
        assert ipa_hash(1 << 48) == ipa_hash(0)

    @given(ipas)
    def test_output_range(self, ipa):
        assert 0 <= ipa_hash(ipa) < (1 << HASH_BITS)

    @given(ipas, ipas)
    def test_linearity(self, a, b):
        """The hardware hash is linear over GF(2): h(a^b) == h(a)^h(b)."""
        assert ipa_hash(a ^ b) == ipa_hash(a) ^ ipa_hash(b)

    @given(ipas, st.integers(1, 2**48 - 1))
    def test_salted_hash_is_deterministic(self, ipa, salt):
        assert ipa_hash(ipa, salt) == ipa_hash(ipa, salt)
        assert 0 <= ipa_hash(ipa, salt) < (1 << HASH_BITS)

    def test_rekeying_breaks_collisions(self):
        """The mitigation property: a pair colliding under the hardware
        hash (or one key) does not keep colliding under another key —
        which is exactly what a linear XOR premix would fail to provide."""
        base = 0x0000_DEAD_B123
        other = base ^ (1 << 5) ^ (1 << 17)  # collides under salt=0
        assert ipa_hash(base) == ipa_hash(other)
        broken = sum(
            ipa_hash(base, salt) != ipa_hash(other, salt)
            for salt in range(1, 65)
        )
        assert broken > 55  # almost every key separates them


class TestFrameOffsetForm:
    @given(frames, st.integers(0, PAGE_SIZE - 1))
    def test_matches_direct_hash(self, frame, offset):
        assert hash_from_frame_offset(frame, offset) == ipa_hash(
            (frame << 12) | offset
        )

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError):
            hash_from_frame_offset(0, PAGE_SIZE)

    @given(frames, hashes)
    def test_collision_offset_is_an_oracle(self, frame, target):
        """Any target hash is reachable within any page (Vulnerability 2)."""
        offset = collision_offset(target, frame)
        assert 0 <= offset < PAGE_SIZE
        assert hash_from_frame_offset(frame, offset) == target

    def test_collision_offset_keyed_search(self):
        """Under a mitigation key, the oracle falls back to page search
        (and may legitimately fail — collisions became scarce)."""
        salt = 0xABCDEF
        found = 0
        for target in range(0, 64):
            try:
                offset = collision_offset(target, frame=0x1234, salt=salt)
            except ValueError:
                continue
            assert hash_from_frame_offset(0x1234, offset, salt) == target
            found += 1
        assert found > 20  # many targets reachable, not necessarily all

    def test_collision_offset_rejects_bad_hash(self):
        with pytest.raises(ValueError):
            collision_offset(1 << HASH_BITS, 0)


class TestXorProfile:
    def test_identical_addresses(self):
        assert xor_profile(0x1234, 0x1234) == [0] * HASH_BITS

    @given(ipas, ipas)
    def test_zero_profile_iff_collision(self, a, b):
        profile = xor_profile(a, b)
        collides = ipa_hash(a) == ipa_hash(b)
        assert (profile == [0] * HASH_BITS) == collides

    @given(ipas, ipas)
    def test_profile_is_hash_of_difference(self, a, b):
        value = sum(bit << i for i, bit in enumerate(xor_profile(a, b)))
        assert value == ipa_hash(a ^ b)

    def test_fig4_property_colliding_pairs_share_stride_xor(self):
        """Colliding pairs have identical XOR parities at stride 12 (Fig 4)."""
        base = 0x0000_DEAD_B123
        # Flip bit 5 and bit 17 together: they fold onto the same output bit.
        other = base ^ (1 << 5) ^ (1 << 17)
        assert ipa_hash(base) == ipa_hash(other)
        assert xor_profile(base, other) == [0] * HASH_BITS
