"""Property tests: PredictorUnit composition vs a split-entry model.

The unit stores C0/C1/C2 per (store-hash, load-hash) pair and C3/C4 per
load hash, assembling a five-counter state per access.  A transparent
dictionary model applying the same TABLE I transition must agree with
the unit on every execution type over arbitrary access interleavings —
as long as the stream stays within the hardware capacities (the model
has no evictions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import CounterState
from repro.core.exec_types import ExecType
from repro.core.predictor_unit import PredictorUnit
from repro.core.ssbp import set_index
from repro.core.state_machine import transition

# Few enough pairs that PSFP (12 entries) never evicts, and load hashes
# in distinct SSBP sets so SSBP (2-way sets) never evicts either.
LOAD_HASHES = [h for h in range(64) if set_index(h) in (0, 1)][:2]
STORE_HASHES = [5, 9, 13]


class SplitModel:
    """The transparent reference: plain dicts, no capacity."""

    def __init__(self) -> None:
        self.psfp: dict[tuple[int, int], tuple[int, int, int]] = {}
        self.ssbp: dict[int, tuple[int, int]] = {}

    def access(self, store_hash: int, load_hash: int, aliasing: bool) -> ExecType:
        c0, c1, c2 = self.psfp.get((store_hash, load_hash), (0, 0, 0))
        c3, c4 = self.ssbp.get(load_hash, (0, 0))
        result = transition(
            CounterState(c0=c0, c1=c1, c2=c2, c3=c3, c4=c4), aliasing
        )
        after = result.state
        allocate = result.exec_type is ExecType.G
        self._write(
            self.psfp, (store_hash, load_hash),
            (after.c0, after.c1, after.c2), allocate,
        )
        self._write(self.ssbp, load_hash, (after.c3, after.c4), allocate)
        return result.exec_type

    @staticmethod
    def _write(table, key, counters, allocate) -> None:
        if not any(counters):
            table.pop(key, None)
        elif key in table or allocate:
            table[key] = counters


accesses = st.lists(
    st.tuples(
        st.sampled_from(STORE_HASHES),
        st.sampled_from(LOAD_HASHES),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


class TestUnitMatchesSplitModel:
    @settings(max_examples=60, deadline=None)
    @given(accesses)
    def test_exec_types_agree(self, stream):
        unit = PredictorUnit()
        model = SplitModel()
        for store_hash, load_hash, aliasing in stream:
            unit_type = unit.access(store_hash, load_hash, aliasing).exec_type
            model_type = model.access(store_hash, load_hash, aliasing)
            assert unit_type is model_type

    @settings(max_examples=30, deadline=None)
    @given(accesses)
    def test_states_agree(self, stream):
        unit = PredictorUnit()
        model = SplitModel()
        for store_hash, load_hash, aliasing in stream:
            unit.access(store_hash, load_hash, aliasing)
            model.access(store_hash, load_hash, aliasing)
        for store_hash in STORE_HASHES:
            for load_hash in LOAD_HASHES:
                expected = CounterState(
                    *model.psfp.get((store_hash, load_hash), (0, 0, 0)),
                    *model.ssbp.get(load_hash, (0, 0)),
                )
                assert unit.state_for(store_hash, load_hash) == expected

    @settings(max_examples=30, deadline=None)
    @given(accesses)
    def test_prediction_precedes_access_consistently(self, stream):
        """predict() must equal what access() then reports it predicted."""
        unit = PredictorUnit()
        for store_hash, load_hash, aliasing in stream:
            predicted = unit.predict(store_hash, load_hash)
            result = unit.access(store_hash, load_hash, aliasing)
            assert result.prediction == predicted
            assert result.exec_type.predicted_aliasing == predicted.aliasing

    @settings(max_examples=30, deadline=None)
    @given(accesses)
    def test_occupancy_bounded(self, stream):
        unit = PredictorUnit()
        for store_hash, load_hash, aliasing in stream:
            unit.access(store_hash, load_hash, aliasing)
            assert unit.psfp.occupancy <= unit.psfp.capacity
            assert unit.ssbp.occupancy <= unit.ssbp.capacity
