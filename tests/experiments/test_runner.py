"""Tests for the experiment registry and CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, QUICK_SET, main, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        artifacts = {artifact for _, artifact, _ in EXPERIMENTS.values()}
        for expected in (
            "Fig 2", "TABLE I", "TABLE II", "TABLE IV",
            "Fig 4", "Fig 5", "Fig 7", "Fig 11", "Fig 12",
            "Figs 8-9", "Section III-C.1", "Section IV-A",
            "Section V-B", "Section V-C.1", "Section V-C.2", "Section VI",
        ):
            assert expected in artifacts, expected

    def test_quick_set_excludes_slow(self):
        for name in QUICK_SET:
            assert EXPERIMENTS[name][2] != "slow"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_experiment("fig99")


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "spectre-stl" in out

    def test_run_one(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "completed" in out
