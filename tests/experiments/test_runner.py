"""Tests for the experiment registry and CLI."""

import pytest

from repro.errors import UnknownExperimentError
from repro.experiments.runner import (
    COST_TIERS,
    EXPERIMENTS,
    QUICK_SET,
    effective_seed,
    main,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        artifacts = {spec.artifact for spec in EXPERIMENTS.values()}
        for expected in (
            "Fig 2", "TABLE I", "TABLE II", "TABLE IV",
            "Fig 4", "Fig 5", "Fig 7", "Fig 11", "Fig 12",
            "Figs 8-9", "Section III-C.1", "Section IV-A",
            "Section V-B", "Section V-C.1", "Section V-C.2", "Section VI",
        ):
            assert expected in artifacts, expected

    def test_quick_set_excludes_slow(self):
        for name in QUICK_SET:
            assert EXPERIMENTS[name].cost != "slow"

    def test_costs_are_known_tiers(self):
        for name, spec in EXPERIMENTS.items():
            assert spec.cost in COST_TIERS, name

    def test_unknown_experiment_raises_typed_error(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            run_experiment("fig99")
        assert excinfo.value.name == "fig99"
        assert "fig2" in excinfo.value.known

    def test_effective_seed_prefers_override(self):
        assert effective_seed("fig4") == EXPERIMENTS["fig4"].default_seed
        assert effective_seed("fig4", 123) == 123

    def test_every_driver_accepts_a_seed(self):
        import inspect

        for name, spec in EXPERIMENTS.items():
            assert "seed" in inspect.signature(spec.driver).parameters, name


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "spectre-stl" in out

    def test_run_one(self, capsys, tmp_path):
        assert main(["fig4", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "completed" in out

    def test_unknown_name_exits_2(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "fig99" in err

    def test_bad_cost_tier_exits_2(self, capsys):
        assert main(["--cost", "glacial"]) == 2
        assert "glacial" in capsys.readouterr().err

    def test_cost_filter_selects_subset(self, capsys, tmp_path):
        assert main(
            ["fig4", "table1", "--cost", "fast", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table1" in out
        assert "2 experiments" in out
