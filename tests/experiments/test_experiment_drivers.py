"""Integration tests: the fast experiment drivers reproduce the claims."""

import pytest

from repro.experiments import fig2_exec_types, fig4_hash, sec3_selection
from repro.experiments import sec4_isolation, sec4_transient, table1_state_machine
from repro.experiments import table2_counters, table4_comparison
from repro.experiments.base import ExperimentResult, format_table


class TestBase:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [["xx", "y"], ["z", "wwwww"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_result_render_contains_everything(self):
        result = ExperimentResult(
            experiment_id="x",
            title="demo",
            headers=["h"],
            paper_claim="c",
        )
        result.add_row("v")
        result.add_note("n")
        result.metrics["m"] = 1
        text = result.render()
        for fragment in ("x: demo", "paper claim: c", "v", "note: n", "m=1"):
            assert fragment in text


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_exec_types.run()

    def test_rollback_types_slowest(self, result):
        assert result.metrics["rollback_slower_than_everything"] == "True"

    def test_observed_types_match_model(self, result):
        assert result.metrics["type_agreement_with_model"] >= 0.99

    def test_eight_rows(self, result):
        assert len(result.rows) == 8

    def test_measured_pmc_attribution(self, result):
        """The Fig 2 PMC logic, on organically measured deltas: stall
        tokens mark predicted-aliasing types, rollbacks mark D/G, and
        store-to-load forwards mark SQ-served loads."""
        assert result.metrics["pmc_stall_attribution"] == "True"
        assert result.metrics["pmc_rollback_attribution"] == "True"
        assert result.metrics["pmc_forward_attribution"] == "True"


class TestTable1:
    def test_agreement_exceeds_paper_threshold(self):
        result = table1_state_machine.run(sequences=15, length=40)
        assert result.metrics["agreement"] > 0.998

    def test_paper_sequences_match(self):
        result = table1_state_machine.run(sequences=2, length=10)
        sequence_rows = [row for row in result.rows if row[0].startswith("phi(")]
        assert all("matches paper" in row[1] for row in sequence_rows)


class TestSelection:
    def test_all_four_steps_match(self):
        result = sec3_selection.run()
        assert result.metrics["conclusion_ipa_selected"] == "True"
        assert all(row[-1] for row in result.rows)


class TestIsolation:
    def test_matrix_matches_paper(self):
        result = sec4_isolation.run()
        assert all(row[-1] for row in result.rows)


class TestTransient:
    def test_vulnerabilities_3_and_4(self):
        result = sec4_transient.run()
        assert result.metrics["vulnerability_3_confirmed"] == "True"
        assert result.metrics["vulnerability_4_confirmed"] == "True"


class TestHashRecovery:
    def test_stride_twelve_recovered(self):
        result = fig4_hash.run(count=48)
        assert result.metrics["stride"] == 12
        assert result.metrics["profile_consistency"] == 1.0


class TestTable2:
    def test_counter_dependencies(self):
        result = table2_counters.run()
        assert all(row[-1] for row in result.rows)
        assert result.metrics["psfp_counters"] == "C0,C1,C2"
        assert result.metrics["ssbp_counters"] == "C3,C4"


class TestTable4:
    def test_rows_and_search_cost(self):
        result = table4_comparison.run(collision_trials=2)
        assert len(result.rows) == 3
        assert result.metrics["amd_mean_collision_attempts"] > 100


class TestRobustnessChannel:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import robustness

        return robustness.run_channel()

    def test_one_row_per_preset(self, result):
        from repro.interference import PRESET_ORDER

        assert [row[0] for row in result.rows] == list(PRESET_ORDER)

    def test_adversarial_costs_goodput(self, result):
        # The interference-smoke gate's assertion, kept in-suite too.
        assert (
            result.metrics["adversarial_goodput_bps"]
            < result.metrics["quiet_goodput_bps"]
        )

    def test_hardened_receiver_recovers_every_preset(self, result):
        from repro.interference import PRESET_ORDER

        for preset in PRESET_ORDER:
            assert result.metrics[f"{preset}_byte_errors"] == 0
