"""Campaign resilience: interruption, checkpoint recovery, quarantine.

Pool-mode coverage drives faults through the chaos injector
(:mod:`repro.runtime.chaos`) rather than mocks — a chaos crash kills the
worker process exactly like the BrokenProcessPool scenarios the old
executor could not survive.  Fast-tier experiments keep these quick.
"""

import json

import pytest

from repro.errors import CampaignInterrupted, ConfigError
from repro.experiments.artifacts import MANIFEST_NAME, artifact_path, read_manifest
from repro.experiments.base import ExperimentResult
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import EXPERIMENTS, ExperimentSpec, main, run_campaign
from repro.runtime.quarantine import QUARANTINE_DIR, quarantined_files

SMOKE = ["fig4", "sec3-selection"]  # two cheap fast-tier experiments


def _ok_driver(seed=0):
    result = ExperimentResult(experiment_id="ok", title="t", headers=["h"])
    result.add_row("v")
    return result


def _interrupt_driver(seed=0):
    raise KeyboardInterrupt


def _stable(names, json_dir, **kwargs):
    options = dict(jobs=2, use_cache=False, stable_meta=True, json_dir=json_dir)
    options.update(kwargs)
    return run_campaign(names, **options)


class TestKeyboardInterrupt:
    def test_inline_interrupt_checkpoints_and_raises(self, tmp_path, monkeypatch):
        monkeypatch.setitem(
            EXPERIMENTS, "ok", ExperimentSpec(_ok_driver, "X", "fast", 1)
        )
        monkeypatch.setitem(
            EXPERIMENTS, "boom", ExperimentSpec(_interrupt_driver, "X", "fast", 1)
        )
        results = tmp_path / "results"
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_campaign(["ok", "boom"], jobs=1, use_cache=False, json_dir=results)
        assert excinfo.value.partial.completed_names == ["ok"]
        assert excinfo.value.checkpoint == results / MANIFEST_NAME
        manifest = read_manifest(results)
        assert manifest["interrupted"] is True
        assert [e["name"] for e in manifest["experiments"]] == ["ok"]

    def test_chaos_interrupt_then_resume_converges(self, tmp_path):
        baseline = tmp_path / "baseline"
        _stable(SMOKE, baseline)
        results = tmp_path / "results"
        with pytest.raises(CampaignInterrupted):
            _stable(SMOKE, results, chaos="interrupt@fig4")
        assert read_manifest(results)["interrupted"] is True
        resumed = _stable(SMOKE, results, resume=True)
        assert resumed.resumed >= 1
        assert (results / MANIFEST_NAME).read_bytes() == (
            baseline / MANIFEST_NAME
        ).read_bytes()


class TestCheckpointRecovery:
    def test_truncated_manifest_is_quarantined_and_artifacts_resume(self, tmp_path):
        results = tmp_path / "results"
        _stable(SMOKE, results)
        manifest = results / MANIFEST_NAME
        manifest.write_text(manifest.read_text()[: 40])
        campaign = _stable(SMOKE, results, resume=True)
        assert campaign.resumed == len(SMOKE)
        assert campaign.quarantined >= 1
        names = [p.name for p in quarantined_files(results)]
        assert MANIFEST_NAME in names
        # The rewritten manifest is whole again.
        assert read_manifest(results)["interrupted"] is False

    def test_corrupt_artifact_is_quarantined_and_rerun(self, tmp_path):
        results = tmp_path / "results"
        _stable(SMOKE, results)
        artifact_path(results, "fig4").write_text("\xff not json")
        campaign = _stable(SMOKE, results, resume=True)
        assert campaign.resumed == len(SMOKE) - 1
        assert campaign.quarantined >= 1
        assert "fig4.json" in [p.name for p in quarantined_files(results)]
        assert len(campaign) == len(SMOKE)  # fig4 was re-run, not lost

    def test_wrong_seed_artifact_is_not_resumed(self, tmp_path):
        results = tmp_path / "results"
        _stable(["fig4"], results)
        campaign = _stable(["fig4"], results, resume=True, seed=999)
        assert campaign.resumed == 0
        assert campaign[0].seed == 999

    def test_resume_without_json_dir_is_config_error(self):
        with pytest.raises(ConfigError):
            run_campaign(["fig4"], resume=True)


class TestCacheQuarantine:
    def test_invalid_utf8_entry_is_quarantined_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache_key("demo", 1)
        entry = cache._entry(key)
        entry.parent.mkdir(parents=True)
        entry.write_bytes(b"\xff\xfe\x00garbage")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not entry.exists()
        assert [p.name for p in quarantined_files(cache.root)] == [entry.name]

    def test_quarantined_count_surfaces_in_manifest(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        key = cache_key("fig4", EXPERIMENTS["fig4"].default_seed)
        entry = cache._entry(key)
        entry.parent.mkdir(parents=True)
        entry.write_text("{broken")
        results = tmp_path / "results"
        run_campaign(["fig4"], use_cache=True, cache_dir=cache_dir,
                     json_dir=results)
        assert read_manifest(results)["quarantined"] == 1


class TestCrashIsolation:
    def test_chaos_crash_campaign_converges_byte_identical(self, tmp_path):
        baseline = tmp_path / "baseline"
        _stable(SMOKE, baseline)
        results = tmp_path / "results"
        campaign = _stable(SMOKE, results, chaos="crash@fig4", retries=2)
        assert campaign.retried >= 1
        assert campaign.failures == []
        assert (results / MANIFEST_NAME).read_bytes() == (
            baseline / MANIFEST_NAME
        ).read_bytes()

    def test_crash_without_retries_is_structured_failure(self, tmp_path):
        results = tmp_path / "results"
        campaign = _stable(SMOKE, results, chaos="crash@fig4", retries=0)
        assert campaign.completed_names == ["sec3-selection"]
        (failure,) = campaign.failures
        assert failure.task == "fig4" and failure.kind == "crash"
        manifest = read_manifest(results)
        entry = next(e for e in manifest["experiments"] if e["name"] == "fig4")
        assert entry["status"] == "failed"
        assert entry["failure"]["kind"] == "crash"
        assert manifest["failures"] and manifest["interrupted"] is False


class TestMainExitCodes:
    def _args(self, tmp_path, *extra):
        return [
            *SMOKE, "--json", str(tmp_path / "results"), "--no-cache",
            "--stable-meta", "--jobs", "2", *extra,
        ]

    def test_interrupt_exits_3_then_resume_exits_0(self, tmp_path, capsys):
        code = main(self._args(tmp_path, "--chaos", "interrupt@fig4"))
        assert code == 3
        assert "--resume" in capsys.readouterr().err
        code = main(self._args(tmp_path, "--resume"))
        assert code == 0
        assert "resumed" in capsys.readouterr().out

    def test_exhausted_task_exits_1(self, tmp_path, capsys):
        code = main(
            self._args(tmp_path, "--chaos", "crash@fig4", "--retries", "0")
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED fig4" in out and "1 failed" in out

    def test_resume_without_json_is_usage_error(self, capsys):
        assert main(["fig4", "--resume", "--no-cache"]) == 2

    def test_bad_chaos_spec_is_usage_error(self, tmp_path, capsys):
        assert main(self._args(tmp_path, "--chaos", "explode@fig4")) == 2


def test_quarantine_never_deletes(tmp_path):
    """The non-negotiable: corrupt state is preserved for post-mortems."""
    results = tmp_path / "results"
    _stable(SMOKE, results)
    original = artifact_path(results, "fig4").read_text()[: 25]
    artifact_path(results, "fig4").write_text(original)
    _stable(SMOKE, results, resume=True)
    saved = results / QUARANTINE_DIR / "fig4.json"
    assert saved.read_text() == original
    reason = saved.with_name(saved.name + ".reason")
    assert reason.exists()
