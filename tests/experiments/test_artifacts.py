"""Round-trip tests for ExperimentResult JSON serialization and artifacts."""

import json

import pytest

from repro.errors import ArtifactError
from repro.experiments.artifacts import (
    artifact_path,
    load_artifacts,
    read_artifact,
    read_manifest,
    write_artifact,
    write_manifest,
)
from repro.experiments.base import RESULT_SCHEMA_VERSION, ExperimentResult


def sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="demo",
        title="round trip",
        headers=["name", "value", "ok"],
        paper_claim="claims survive serialization",
    )
    result.add_row("alpha", 1.5, True)
    result.add_row("beta", 42, False)
    result.add_note("one note")
    result.metrics["accuracy"] = 0.9995          # float
    result.metrics["bandwidth"] = "416 B/s"      # str
    result.metrics["count"] = 64                 # int
    result.seed = 7
    result.wall_time_s = 1.25
    result.worker = "pid:1"
    return result


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        original = sample_result()
        restored = ExperimentResult.from_dict(original.to_dict())
        assert restored == original

    def test_json_round_trip_preserves_mixed_metric_types(self):
        data = json.loads(json.dumps(sample_result().to_dict()))
        restored = ExperimentResult.from_dict(data)
        assert restored.metrics["accuracy"] == pytest.approx(0.9995)
        assert isinstance(restored.metrics["accuracy"], float)
        assert restored.metrics["bandwidth"] == "416 B/s"
        assert restored.metrics["count"] == 64
        assert isinstance(restored.metrics["count"], int)

    def test_rows_preserve_bools_numbers_strings(self):
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(sample_result().to_dict()))
        )
        assert restored.rows == [["alpha", 1.5, True], ["beta", 42, False]]

    def test_non_json_cells_degrade_to_str(self):
        result = sample_result()
        result.add_row(object(), 1, True)
        cell = result.to_dict()["rows"][-1][0]
        assert isinstance(cell, str)

    def test_schema_stamp_present_and_checked(self):
        data = sample_result().to_dict()
        assert data["schema"] == RESULT_SCHEMA_VERSION
        data["schema"] = 99
        with pytest.raises(ArtifactError):
            ExperimentResult.from_dict(data)

    def test_missing_required_key_raises(self):
        data = sample_result().to_dict()
        del data["title"]
        with pytest.raises(ArtifactError):
            ExperimentResult.from_dict(data)

    def test_non_dict_raises(self):
        with pytest.raises(ArtifactError):
            ExperimentResult.from_dict([1, 2, 3])


class TestArtifactFiles:
    def test_write_then_read(self, tmp_path):
        original = sample_result()
        path = write_artifact(original, tmp_path, "demo")
        assert path == artifact_path(tmp_path, "demo")
        assert read_artifact(path) == original

    def test_registry_name_overrides_experiment_id(self, tmp_path):
        path = write_artifact(sample_result(), tmp_path, "other-name")
        assert path.name == "other-name.json"

    def test_load_artifacts_skips_manifest(self, tmp_path):
        write_artifact(sample_result(), tmp_path, "demo")
        write_manifest(tmp_path, [{"name": "demo"}], jobs=2)
        loaded = load_artifacts(tmp_path)
        assert list(loaded) == ["demo"]
        manifest = read_manifest(tmp_path)
        assert manifest["jobs"] == 2
        assert manifest["experiments"][0]["name"] == "demo"

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(ArtifactError):
            read_artifact(tmp_path / "nope.json")

    def test_corrupt_artifact_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ArtifactError):
            read_artifact(bad)
