"""Measured-table regeneration and campaign artifact comparison."""

import pytest

from repro.experiments.artifacts import write_artifact
from repro.experiments.base import ExperimentResult
from repro.experiments.report import (
    BEGIN_MARK,
    END_MARK,
    compare_artifacts,
    render_measured_table,
    update_markdown,
)


def result_with(metrics, rows=(("a", 1),), seed=5):
    result = ExperimentResult(
        experiment_id="demo", title="t", headers=["x", "y"]
    )
    for row in rows:
        result.add_row(*row)
    result.metrics.update(metrics)
    result.seed = seed
    result.wall_time_s = 0.5
    return result


class TestRenderAndUpdate:
    def test_table_contains_metrics_and_seed(self):
        table = render_measured_table({"demo": result_with({"acc": 0.995, "n": 64})})
        assert "| `demo` | 5 | 0.5s |" in table
        assert "acc=0.995" in table and "n=64" in table

    def test_update_markdown_rewrites_only_the_block(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(f"intro\n\n{BEGIN_MARK}\nstale\n{END_MARK}\n\noutro\n")
        changed = update_markdown(doc, {"demo": result_with({"acc": 1.0})})
        text = doc.read_text()
        assert changed is True
        assert "stale" not in text
        assert "acc=1" in text
        assert text.startswith("intro") and text.rstrip().endswith("outro")
        assert update_markdown(doc, {"demo": result_with({"acc": 1.0})}) is False

    def test_update_markdown_requires_markers(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("no markers here\n")
        with pytest.raises(SystemExit):
            update_markdown(doc, {})


class TestCompare:
    def test_identical_directories_have_no_problems(self, tmp_path):
        for directory in ("a", "b"):
            write_artifact(result_with({"m": 1.0}), tmp_path / directory, "demo")
        assert compare_artifacts(tmp_path / "a", tmp_path / "b") == []

    def test_row_and_metric_differences_reported(self, tmp_path):
        write_artifact(result_with({"m": 1.0}), tmp_path / "a", "demo")
        write_artifact(
            result_with({"m": 2.0}, rows=(("a", 9),)), tmp_path / "b", "demo"
        )
        problems = compare_artifacts(tmp_path / "a", tmp_path / "b")
        assert any("rows differ" in p for p in problems)
        assert any("metrics differ" in p for p in problems)

    def test_one_sided_artifacts_reported(self, tmp_path):
        write_artifact(result_with({}), tmp_path / "a", "only-here")
        (tmp_path / "b").mkdir()
        problems = compare_artifacts(tmp_path / "a", tmp_path / "b")
        assert problems and "only in" in problems[0]

    def test_wall_time_and_worker_ignored(self, tmp_path):
        fast = result_with({"m": 1.0})
        slow = result_with({"m": 1.0})
        slow.wall_time_s, slow.worker = 99.0, "pid:42"
        write_artifact(fast, tmp_path / "a", "demo")
        write_artifact(slow, tmp_path / "b", "demo")
        assert compare_artifacts(tmp_path / "a", tmp_path / "b") == []
