"""Cache key derivation and ResultCache hit/miss/invalidation behavior."""

from repro.core.config import default_model, get_model
from repro.experiments.base import ExperimentResult
from repro.experiments.cache import ResultCache, cache_key
from repro.runtime.quarantine import QUARANTINE_DIR


def small_result(experiment_id: str = "demo") -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id, title="t", headers=["h"]
    )
    result.add_row("v")
    result.metrics["m"] = 1.0
    return result


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("fig4", 4) == cache_key("fig4", 4)

    def test_changes_with_name(self):
        assert cache_key("fig4", 4) != cache_key("fig5", 4)

    def test_changes_with_seed(self):
        assert cache_key("fig4", 4) != cache_key("fig4", 5)

    def test_changes_with_model(self):
        base = cache_key("fig4", 4, model=default_model())
        other_platform = cache_key("fig4", 4, model=get_model("epyc-7543"))
        tweaked = cache_key(
            "fig4", 4, model=default_model().with_overrides(timer_noise=0.01)
        )
        assert base != other_platform
        assert base != tweaked

    def test_changes_with_version(self):
        assert cache_key("fig4", 4, version="1.0.0") != cache_key(
            "fig4", 4, version="1.0.1"
        )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache_key("demo", 1)
        assert cache.get(key) is None
        cache.put(key, small_result())
        hit = cache.get(key)
        assert hit is not None
        assert hit.cache_hit is True
        assert hit.rows == [["v"]]
        assert cache.hits == 1 and cache.misses == 1

    def test_seed_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(cache_key("demo", 1), small_result())
        assert cache.get(cache_key("demo", 2)) is None

    def test_model_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put(cache_key("demo", 1, model=default_model()), small_result())
        assert cache.get(cache_key("demo", 1, model=get_model("epyc-7543"))) is None

    def test_stored_entry_never_claims_cache_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache_key("demo", 1)
        hit = small_result()
        hit.cache_hit = True  # replayed result being re-stored
        cache.put(key, hit)
        import json

        stored = json.loads(cache._entry(key).read_text())
        assert stored["cache_hit"] is False

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = cache_key("demo", 1)
        entry = cache._entry(key)
        entry.parent.mkdir(parents=True)
        entry.write_text("{broken")
        assert cache.get(key) is None
        # Preserved for post-mortems, not deleted: moved to quarantine/
        # with a reason sidecar, and counted.
        assert not entry.exists()
        assert cache.quarantined == 1
        saved = cache.root / QUARANTINE_DIR / entry.name
        assert saved.read_text() == "{broken"
        assert "JSON" in saved.with_name(saved.name + ".reason").read_text()
        assert len(cache) == 0  # quarantined entries do not count as stored

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert len(cache) == 0
        cache.put(cache_key("a", 1), small_result("a"))
        cache.put(cache_key("b", 1), small_result("b"))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
