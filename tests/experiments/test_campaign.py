"""Campaign engine behavior: parallel == serial, caching, catalog sync."""

import re
from pathlib import Path

import pytest

from repro.experiments.artifacts import read_artifact, read_manifest
from repro.experiments.runner import EXPERIMENTS, run_campaign

SMOKE = ["fig4", "sec3-selection"]  # two cheap fast-tier experiments


class TestParallelMatchesSerial:
    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serial")
        return run_campaign(
            SMOKE, jobs=1, use_cache=False, json_dir=root / "results"
        ), root / "results"

    def test_two_workers_identical_rows(self, serial, tmp_path):
        serial_results, _ = serial
        parallel_results = run_campaign(
            SMOKE, jobs=2, use_cache=False, json_dir=tmp_path / "results"
        )
        for ours, theirs in zip(serial_results, parallel_results):
            assert ours.rows == theirs.rows
            assert ours.metrics == theirs.metrics
            assert ours.headers == theirs.headers

    def test_artifacts_written_per_experiment(self, serial):
        _, results_dir = serial
        for name in SMOKE:
            artifact = read_artifact(results_dir / f"{name}.json")
            assert artifact.rows
            assert artifact.seed == EXPERIMENTS[name].default_seed
            assert artifact.wall_time_s is not None
            assert artifact.worker.startswith("pid:")

    def test_manifest_summarizes_run(self, serial):
        _, results_dir = serial
        manifest = read_manifest(results_dir)
        assert [e["name"] for e in manifest["experiments"]] == SMOKE
        assert all(e["cache_key"] for e in manifest["experiments"])
        assert manifest["jobs"] == 1


class TestCampaignCache:
    def test_warm_rerun_replays_everything(self, tmp_path):
        cold = run_campaign(["fig4"], cache_dir=tmp_path / "cache")
        warm = run_campaign(["fig4"], cache_dir=tmp_path / "cache")
        assert cold[0].cache_hit is False
        assert warm[0].cache_hit is True
        assert warm[0].rows == cold[0].rows

    def test_seed_override_misses_and_refills(self, tmp_path):
        run_campaign(["fig4"], cache_dir=tmp_path / "cache")
        other = run_campaign(["fig4"], seed=123, cache_dir=tmp_path / "cache")
        assert other[0].cache_hit is False
        assert other[0].seed == 123
        again = run_campaign(["fig4"], seed=123, cache_dir=tmp_path / "cache")
        assert again[0].cache_hit is True


class TestCatalogSync:
    CATALOG = Path(__file__).resolve().parents[2] / "docs" / "experiments.md"

    def catalog_names(self) -> list[str]:
        text = self.CATALOG.read_text(encoding="utf-8")
        return re.findall(r"^## `([^`]+)`$", text, flags=re.MULTILINE)

    def test_catalog_documents_every_registry_entry(self):
        assert set(self.catalog_names()) == set(EXPERIMENTS)

    def test_catalog_order_matches_registry(self):
        assert self.catalog_names() == list(EXPERIMENTS)

    def test_catalog_covers_all_27_artifacts(self):
        assert len(self.catalog_names()) == 27

    def test_catalog_states_each_default_seed(self):
        text = self.CATALOG.read_text(encoding="utf-8")
        for name, spec in EXPERIMENTS.items():
            section = text.split(f"## `{name}`")[1].split("## `")[0]
            assert f"default seed {spec.default_seed}" in section, name
            assert f"**Cost tier:** {spec.cost}" in section, name
