"""Tests for the stld microbenchmark harness (Listing 1 analog)."""
# (kept in sync with the attacker-side probing semantics)

import pytest

from repro.core.exec_types import ExecType
from repro.revng.sequences import StldToken, format_types
from repro.revng.stld import (
    StldHarness,
    build_stld,
    load_instruction_index,
    store_instruction_index,
)


@pytest.fixture(scope="module")
def harness():
    return StldHarness()


class TestBuildStld:
    def test_has_one_store_then_one_load(self):
        program = build_stld()
        assert store_instruction_index(program) + 1 == load_instruction_index(program)

    def test_agen_chain_length(self):
        short = build_stld(agen_imuls=5)
        long = build_stld(agen_imuls=25)
        assert len(long) - len(short) == 20


class TestOracleSequences:
    """Ground-truth pipeline events reproduce the paper's phi strings."""

    def test_phi_7n_a(self, harness):
        types = harness.run_events("7n, a")
        assert format_types(types) == "7H, G"

    def test_phi_continuation_matches_model(self, harness):
        # Continues from the previous test's trained state: (7n, a) again
        # must show the C0 decay then the Load-From-Cache H plateau.
        types = harness.run_events("7n, a")
        assert format_types(types) == "4E, 3H, G"

    def test_c3_tail_after_third_g(self, harness):
        # The previous two tests delivered 2 G events; the third charges C3.
        types = harness.run_events("7n, a")
        assert format_types(types) == "4E, 3H, G"
        tail = harness.run_events("16n")
        assert tail[:15] == [ExecType.F] * 15
        assert tail[15] is ExecType.H


class TestVariantPlacement:
    def test_same_ids_share_hashes(self, harness):
        first = harness._ensure_variant(StldToken(False, 3, 4))
        second = harness._ensure_variant(StldToken(True, 3, 4))
        assert first is second

    def test_same_load_id_same_load_hash(self, harness):
        base = harness.variant(0, 0)
        other = harness._ensure_variant(StldToken(False, 0, 5))
        assert other.load_hash == base.load_hash
        assert other.store_hash != base.store_hash

    def test_same_store_id_same_store_hash(self, harness):
        base = harness.variant(0, 0)
        other = harness._ensure_variant(StldToken(False, 6, 0))
        assert other.store_hash == base.store_hash
        assert other.load_hash != base.load_hash

    def test_fresh_ids_get_fresh_hashes(self, harness):
        base = harness.variant(0, 0)
        other = harness._ensure_variant(StldToken(False, 7, 7))
        assert other.load_hash != base.load_hash
        assert other.store_hash != base.store_hash

    def test_double_equality_placement_is_rejected(self, harness):
        """With a fixed store->load distance, the two hashes are linked,
        so demanding both equalities at once is unreachable — the Fig 7
        equal-IPA-distance finding surfaced as an explicit error."""
        from repro.errors import CollisionNotFound

        harness._ensure_variant(StldToken(False, 8, 9))
        harness._ensure_variant(StldToken(False, 10, 11))
        with pytest.raises(CollisionNotFound, match="distance"):
            harness._ensure_variant(StldToken(False, 8, 11))


class TestTimingOutput:
    def test_measurement_noise_is_bounded(self, harness):
        token = StldToken(False, 12, 12)
        cycles = [harness.run_token(token) for _ in range(20)]
        mean = sum(cycles) / len(cycles)
        assert all(abs(c - mean) / mean < 0.02 for c in cycles)

    def test_aliasing_after_training_is_slower_than_bypass(self, harness):
        fast = harness.run_token(StldToken(False, 13, 13))
        harness.run_token(StldToken(True, 13, 13))  # G: trains aliasing
        slow = harness.run_token(StldToken(False, 13, 13))  # E: stalls
        assert slow > fast * 1.3
