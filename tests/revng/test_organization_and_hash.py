"""Tests for eviction-curve experiments (Fig 5) and hash recovery (Fig 4)."""

import random

import pytest

from repro.core.hashfn import ipa_hash
from repro.errors import ReproError
from repro.revng.hash_recovery import (
    fold_hash,
    infer_stride,
    recover_fold_hash,
    stride_parity_ok,
)
from repro.revng.organization import EvictionCurve, OrganizationExperiment
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier


@pytest.fixture(scope="module")
def experiment():
    harness = StldHarness()
    classifier = TimingClassifier(harness)
    classifier.calibrate()
    return OrganizationExperiment(harness, classifier, pool_size=40)


class TestPsfpEviction:
    """Fig 5: PSFP eviction is abrupt at eviction size 12."""

    def test_below_threshold_survives(self, experiment):
        assert not any(experiment.psfp_trial(8) for _ in range(3))

    def test_eleven_survives(self, experiment):
        assert not any(experiment.psfp_trial(11) for _ in range(3))

    def test_twelve_always_evicts(self, experiment):
        assert all(experiment.psfp_trial(12) for _ in range(3))

    def test_curve_threshold(self, experiment):
        curve = experiment.psfp_curve(sizes=[10, 11, 12, 13], trials=3)
        assert curve.rates[10] == 0.0
        assert curve.rates[11] == 0.0
        assert curve.rates[12] == 1.0
        assert curve.threshold(0.5) == 12


class TestSsbpEviction:
    """Fig 5: SSBP eviction is gradual; >50% at 16, ~90% at 32."""

    def test_curve_shape(self, experiment):
        # Analytic rates for the 8x2 backing store: ~9% at 4, ~61% at 16,
        # ~92% at 32; bounds allow for 30-trial sampling noise.  The full
        # Fig 5 run (benchmarks) uses enough trials to pin the 50%/90%
        # crossings the paper reports.
        curve = experiment.ssbp_curve(sizes=[4, 16, 32], trials=30)
        assert curve.rates[4] < 0.35
        assert curve.rates[16] > 0.45
        assert curve.rates[32] > 0.78

    def test_monotone_nondecreasing_with_tolerance(self, experiment):
        curve = experiment.ssbp_curve(sizes=[8, 24], trials=10)
        assert curve.rates[8] <= curve.rates[24] + 0.2


class TestEvictionCurveContainer:
    def test_threshold_none_when_never_reached(self):
        curve = EvictionCurve("x", rates={4: 0.1, 8: 0.2})
        assert curve.threshold(0.9) is None

    def test_threshold_picks_smallest(self):
        curve = EvictionCurve("x", rates={4: 0.1, 8: 0.6, 16: 0.9})
        assert curve.threshold(0.5) == 8


def colliding_pairs(count: int, seed: int = 0) -> list[tuple[int, int]]:
    """Generate IPA pairs that collide under the reference hash."""
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        a = rng.getrandbits(48)
        b = rng.getrandbits(48)
        # Force a collision: adjust b's low 12 bits.
        b = (b & ~0xFFF) | (ipa_hash(a) ^ ipa_hash(b & ~0xFFF))
        assert ipa_hash(a) == ipa_hash(b)
        pairs.append((a, b))
    return pairs


class TestHashRecovery:
    def test_fold_hash_matches_reference_at_stride_12(self):
        for value in (0, 1, 0xDEADBEEF, (1 << 48) - 1):
            assert fold_hash(value, 12) == ipa_hash(value)

    def test_stride_parity_on_colliding_pair(self):
        a, b = colliding_pairs(1)[0]
        assert stride_parity_ok(a, b, 12)

    def test_infer_stride_finds_twelve(self):
        assert infer_stride(colliding_pairs(64)) == 12

    def test_infer_stride_rejects_noncolliding_garbage(self):
        rng = random.Random(1)
        pairs = []
        while len(pairs) < 32:
            a, b = rng.getrandbits(48), rng.getrandbits(48)
            if ipa_hash(a) != ipa_hash(b):
                pairs.append((a, b))
        with pytest.raises(ReproError):
            infer_stride(pairs)

    def test_infer_stride_needs_data(self):
        with pytest.raises(ReproError):
            infer_stride([])

    def test_recover_fold_hash(self):
        assert recover_fold_hash(colliding_pairs(64)) == 12

    def test_fig4_property(self):
        """Colliding pairs share per-bit XOR parity at stride 12."""
        for a, b in colliding_pairs(16, seed=3):
            diff = a ^ b
            for i in range(12):
                parity = (
                    (diff >> i & 1)
                    ^ (diff >> (i + 12) & 1)
                    ^ (diff >> (i + 24) & 1)
                    ^ (diff >> (i + 36) & 1)
                )
                assert parity == 0
