"""Tests for the stld sequence DSL."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.exec_types import ExecType
from repro.revng.sequences import (
    SequenceSyntaxError,
    StldToken,
    format_sequence,
    format_types,
    parse,
    parse_types,
    to_bools,
)


class TestParse:
    def test_single_token(self):
        assert parse("n") == [StldToken(aliasing=False)]

    def test_counted_token(self):
        assert parse("3a") == [StldToken(aliasing=True)] * 3

    def test_mixed(self):
        tokens = parse("2n, a")
        assert [t.kind for t in tokens] == ["n", "n", "a"]

    def test_annotated(self):
        (token,) = parse("a:0:1")
        assert token == StldToken(aliasing=True, load_id=0, store_id=1)

    def test_counted_annotated(self):
        tokens = parse("6a:0:1")
        assert len(tokens) == 6
        assert all(t.store_id == 1 for t in tokens)

    def test_parenthesised_paper_style(self):
        assert parse("(7n, a)") == parse("7n, a")

    def test_whitespace_tolerant(self):
        assert parse(" 2n ,a ") == parse("2n,a")

    def test_empty_chunks_ignored(self):
        assert parse("n,,a") == parse("n,a")

    @pytest.mark.parametrize("bad", ["x", "3", "n:1", "a:b:c", "-2n", "n a"])
    def test_bad_tokens_rejected(self, bad):
        with pytest.raises(SequenceSyntaxError):
            parse(bad)


class TestToBools:
    def test_plain(self):
        assert to_bools("n, a, n") == [False, True, False]

    def test_accepts_token_list(self):
        assert to_bools(parse("2a")) == [True, True]

    def test_rejects_annotated(self):
        with pytest.raises(SequenceSyntaxError):
            to_bools("a:0:1")


class TestFormatting:
    def test_format_sequence_runs(self):
        assert format_sequence(parse("3n, a")) == "3n, a"

    def test_format_sequence_annotated(self):
        assert format_sequence(parse("2a:1:2")) == "2a:1:2"

    def test_format_types(self):
        types = [ExecType.H, ExecType.H, ExecType.G]
        assert format_types(types) == "2H, G"

    def test_parse_types(self):
        assert parse_types("2H, G") == [ExecType.H, ExecType.H, ExecType.G]

    def test_parse_types_rejects_garbage(self):
        with pytest.raises(SequenceSyntaxError):
            parse_types("2Z")

    def test_types_roundtrip(self):
        text = "4E, 3H, G, 2D"
        assert format_types(parse_types(text)) == text


sequences = st.lists(
    st.tuples(st.integers(1, 9), st.booleans(), st.integers(0, 3), st.integers(0, 3)),
    min_size=1,
    max_size=10,
)


class TestRoundtrips:
    @given(sequences)
    def test_parse_format_roundtrip(self, spec):
        tokens = [
            token
            for count, aliasing, load_id, store_id in spec
            for token in [StldToken(aliasing, load_id, store_id)] * count
        ]
        assert parse(format_sequence(tokens)) == tokens

    @given(st.lists(st.sampled_from(list(ExecType)), min_size=1, max_size=40))
    def test_types_format_parse_roundtrip(self, types):
        assert parse_types(format_types(types)) == types
