"""Tests for timing classification, counter probes, and model validation."""

import pytest

from repro.core.counters import CounterState
from repro.core.exec_types import ExecType, TimingClass
from repro.revng.probes import PredictorProber
from repro.revng.sequences import StldToken, parse
from repro.revng.state_infer import ModelValidator, refine_types
from repro.revng.stld import StldHarness
from repro.revng.timing import TimingClassifier


@pytest.fixture(scope="module")
def rig():
    harness = StldHarness()
    classifier = TimingClassifier(harness)
    classifier.calibrate()
    return harness, classifier


class TestCalibration:
    def test_all_six_classes_observed(self, rig):
        _, classifier = rig
        assert set(classifier.calibration.means) == set(TimingClass)

    def test_expected_ordering(self, rig):
        """Fig 2 level ordering: H < C < A/B < E/F < rollbacks."""
        _, classifier = rig
        means = classifier.calibration.means
        assert (
            means[TimingClass.BYPASS]
            < means[TimingClass.PSF_FORWARD]
            < means[TimingClass.STALL_FORWARD]
            < means[TimingClass.STALL_CACHE]
            < means[TimingClass.ROLLBACK_BYPASS]
            < means[TimingClass.ROLLBACK_FORWARD]
        )

    def test_rollback_types_are_far_slower(self, rig):
        _, classifier = rig
        means = classifier.calibration.means
        assert means[TimingClass.ROLLBACK_BYPASS] > 2 * means[TimingClass.BYPASS]

    def test_margin_exceeds_noise(self, rig):
        harness, classifier = rig
        slowest = max(classifier.calibration.means.values())
        worst_noise = slowest * harness.machine.core.model.timer_noise
        assert classifier.margin() > 2 * worst_noise

    def test_classify_roundtrip(self, rig):
        _, classifier = rig
        for cls, mean in classifier.calibration.means.items():
            assert classifier.classify(round(mean)) is cls

    def test_uncalibrated_classifier_raises(self):
        harness = StldHarness()
        with pytest.raises(Exception):
            TimingClassifier(harness).classify(100)


class TestProber:
    def test_read_c3_after_training(self, rig):
        harness, classifier = rig
        prober = PredictorProber(harness, classifier)
        prober.charge_c3(load_id=20, store_id=20)
        assert prober.read_c3(load_id=20) == 15

    def test_read_c3_untrained_is_zero(self, rig):
        harness, classifier = rig
        prober = PredictorProber(harness, classifier)
        assert prober.read_c3(load_id=21) == 0

    def test_clear_c3(self, rig):
        harness, classifier = rig
        prober = PredictorProber(harness, classifier)
        prober.charge_c3(load_id=22, store_id=22)
        prober.clear_c3(load_id=22)
        assert not prober.c3_is_charged(load_id=22)

    def test_psfp_trained_probe(self, rig):
        harness, classifier = rig
        prober = PredictorProber(harness, classifier)
        prober.train_psfp(load_id=23, store_id=23)
        assert prober.psfp_trained(load_id=23, store_id=23)

    def test_psfp_probe_on_fresh_pair(self, rig):
        harness, classifier = rig
        prober = PredictorProber(harness, classifier)
        assert not prober.psfp_trained(load_id=24, store_id=24)


class TestModelValidation:
    def test_random_sequences_agree_with_table_i(self, rig):
        """The Section III-B.3 result: the model explains > 99.8% of
        random-sequence observations."""
        harness, classifier = rig
        validator = ModelValidator(harness, classifier)
        report = validator.validate_random(sequences=10, length=40, seed=7)
        assert report.total == 400
        assert report.agreement > 0.998

    def test_named_sequence_validates(self, rig):
        harness, classifier = rig
        validator = ModelValidator(harness, classifier)
        report = validator.validate_sequence("3n, a, 4a, 5a, n")
        # The base variant carries state from other tests; agreement is
        # not meaningful here — only that the plumbing runs end to end.
        assert report.total == 14


class TestRefineTypes:
    def test_unambiguous_classes_pass_through(self):
        classes = [TimingClass.BYPASS, TimingClass.ROLLBACK_BYPASS]
        refined = refine_types(classes, [False, True])
        assert refined == [ExecType.H, ExecType.G]

    def test_stall_classes_split_by_model_state(self):
        # After a G the state is S1 (C3=0): stalls are A/E, not B/F.
        classes = [
            TimingClass.ROLLBACK_BYPASS,  # a -> G
            TimingClass.STALL_CACHE,      # n -> E
            TimingClass.STALL_FORWARD,    # a -> A
        ]
        refined = refine_types(classes, [True, False, True])
        assert refined == [ExecType.G, ExecType.E, ExecType.A]

    def test_sticky_state_gives_b_and_f(self):
        start = CounterState(c0=2, c1=20, c2=2, c3=10, c4=3)
        classes = [TimingClass.STALL_CACHE, TimingClass.STALL_FORWARD]
        refined = refine_types(classes, [False, True], start)
        assert refined == [ExecType.F, ExecType.B]
