"""Outlier-robust calibration: median/MAD fits, confidence, separability."""

import pytest

from repro.core.exec_types import TimingClass
from repro.errors import ReproError
from repro.revng.timing import CalibrationResult, CentroidClassifier, mad, median


class TestMedianMad:
    def test_median_odd_even(self):
        assert median([3, 1, 2]) == 2.0
        assert median([4, 1, 3, 2]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ReproError):
            median([])

    def test_mad_of_tight_cluster(self):
        assert mad([10, 10, 11, 10, 9]) == 0.0  # median deviation is 0

    def test_mad_ignores_a_single_outlier(self):
        clean = [100, 101, 99, 100, 102, 98, 100]
        assert mad(clean + [5000]) <= mad(clean) + 1.0

    def test_mad_empty_is_zero(self):
        assert mad([]) == 0.0


def _calibration(bypass, stall):
    result = CalibrationResult()
    for cycles in bypass:
        result.add(TimingClass.BYPASS, cycles)
    for cycles in stall:
        result.add(TimingClass.STALL_CACHE, cycles)
    return result


class TestRobustFit:
    def test_default_fit_uses_means(self):
        classifier = CentroidClassifier()
        classifier.fit(_calibration([10, 10, 70], [100, 100, 100]))
        assert not classifier.robust
        # The outlier drags the mean to 30: a reading of 60 lands on the
        # bypass side even though every typical bypass was 10.
        assert classifier.classify(60) is TimingClass.BYPASS

    def test_robust_fit_shrugs_off_a_preempted_sample(self):
        classifier = CentroidClassifier()
        classifier.fit(_calibration([10, 10, 70], [100, 100, 100]), robust=True)
        assert classifier.robust
        # Median centroid stays at 10, so 60 correctly reads as stall.
        assert classifier.classify(60) is TimingClass.STALL_CACHE

    def test_confidence_extremes(self):
        classifier = CentroidClassifier()
        classifier.fit(_calibration([10, 10, 10], [100, 100, 100]))
        on_centroid = classifier.classify_with_confidence(10)
        midpoint = classifier.classify_with_confidence(55)
        assert on_centroid == (TimingClass.BYPASS, 1.0)
        assert midpoint[1] == 0.0

    def test_confidence_bounded(self):
        classifier = CentroidClassifier()
        classifier.fit(_calibration([10, 11, 9], [100, 99, 101]), robust=True)
        for cycles in range(0, 200, 7):
            _, confidence = classifier.classify_with_confidence(cycles)
            assert 0.0 <= confidence <= 1.0

    def test_uncalibrated_classifier_raises(self):
        with pytest.raises(ReproError, match="not calibrated"):
            CentroidClassifier().classify_with_confidence(10)


class TestSeparability:
    def test_clean_gap_scores_high(self):
        classifier = CentroidClassifier()
        classifier.fit(
            _calibration([10, 10, 11, 10], [100, 100, 101, 100]), robust=True
        )
        assert classifier.separability() > 10

    def test_overlapping_classes_score_low(self):
        classifier = CentroidClassifier()
        classifier.fit(
            _calibration([10, 40, 20, 35], [30, 55, 45, 28]), robust=True
        )
        assert classifier.separability() < 1.2

    def test_single_class_has_no_separation(self):
        classifier = CentroidClassifier()
        classifier.fit(_calibration([10, 10], []), robust=True)
        assert classifier.separability() == 0.0
