"""Tests for the one-call reverse-engineering campaign."""

import pytest

from repro.cpu.machine import Machine
from repro.revng.report import PredictorDossier, ReverseEngineeringCampaign


@pytest.fixture(scope="module")
def dossier():
    campaign = ReverseEngineeringCampaign(Machine(seed=404))
    return campaign.run(
        validation_sequences=5,
        psfp_sizes=(10, 11, 12, 13),
        ssbp_sizes=(8, 32),
        eviction_trials=5,
    )


class TestCampaign:
    def test_recovers_psfp_size(self, dossier):
        assert dossier.psfp_entries == 12

    def test_recovers_hash_stride(self, dossier):
        assert dossier.hash_stride == 12

    def test_model_agreement(self, dossier):
        assert dossier.model_agreement > 0.998

    def test_six_timing_levels(self, dossier):
        assert len(dossier.timing_levels) == 6
        assert dossier.timing_margin >= 2.0

    def test_ssbp_curve_is_gradual(self, dossier):
        assert 0 < dossier.ssbp_eviction_rates[8] < 1
        assert dossier.ssbp_eviction_rates[32] > dossier.ssbp_eviction_rates[8]

    def test_summary_renders(self, dossier):
        text = dossier.summary()
        for fragment in ("timing levels", "PSFP entries", "stride"):
            assert fragment in text

    def test_empty_dossier_summary(self):
        assert "Predictor dossier" in PredictorDossier().summary()

    def test_separable_property(self):
        campaign = ReverseEngineeringCampaign(Machine(seed=405))
        assert not campaign.separable  # not calibrated yet
        campaign.classifier.calibrate()
        assert campaign.separable
