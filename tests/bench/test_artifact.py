"""Artifact schema, round-trip, and noise-aware comparison rules."""

import json

import pytest

from repro.bench.artifact import (
    BENCH_SCHEMA,
    DEFAULT_THRESHOLD,
    compare_artifacts,
    load_artifact,
    make_artifact,
    write_artifact,
)
from repro.bench.timing import Measurement
from repro.errors import ArtifactError


def measurement(name, ops, spread=0.05, unit="ops"):
    return Measurement(
        name=name,
        unit=unit,
        ops_per_s=ops,
        median_ops_per_s=ops * 0.97,
        spread=spread,
        repeats=5,
        units_per_rep=1000.0,
        best_s=1000.0 / ops,
    )


def artifact(entries, label="t", quick=True):
    return make_artifact(
        [measurement(n, ops, spread) for n, ops, spread in entries],
        label=label,
        quick=quick,
    )


class TestArtifactIO:
    def test_round_trip(self, tmp_path):
        payload = artifact([("pipeline.steps", 100000.0, 0.1)])
        path = tmp_path / "BENCH_t.json"
        write_artifact(path, payload)
        loaded = load_artifact(path)
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["label"] == "t"
        assert loaded["quick"] is True
        assert loaded["benchmarks"]["pipeline.steps"]["ops_per_s"] == 100000.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            load_artifact(tmp_path / "nope.json")

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "repro-bench/v0", "benchmarks": {}}))
        with pytest.raises(ArtifactError, match="schema"):
            load_artifact(path)

    def test_missing_benchmarks_table_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(ArtifactError, match="benchmarks"):
            load_artifact(path)


class TestCompare:
    def test_improvement_never_regresses(self):
        old = artifact([("a", 100.0, 0.05)])
        new = artifact([("a", 250.0, 0.05)])
        (row,) = compare_artifacts(old, new)
        assert row.ratio == pytest.approx(2.5)
        assert not row.regressed

    def test_large_drop_regresses(self):
        old = artifact([("a", 100.0, 0.05)])
        new = artifact([("a", 60.0, 0.05)])
        (row,) = compare_artifacts(old, new)
        assert row.regressed

    def test_drop_within_threshold_passes(self):
        old = artifact([("a", 100.0, 0.05)])
        new = artifact([("a", 80.0, 0.05)])
        (row,) = compare_artifacts(old, new, threshold=0.25)
        assert not row.regressed

    def test_drop_within_noise_passes(self):
        """A 40% drop on a benchmark whose own spread is 50% is noise,
        not a regression — the noise-aware half of the rule."""
        old = artifact([("a", 100.0, 0.5)])
        new = artifact([("a", 60.0, 0.05)])
        (row,) = compare_artifacts(old, new, threshold=0.25)
        assert not row.regressed

    def test_new_side_noise_also_counts(self):
        old = artifact([("a", 100.0, 0.05)])
        new = artifact([("a", 60.0, 0.5)])
        (row,) = compare_artifacts(old, new, threshold=0.25)
        assert not row.regressed

    def test_one_sided_benchmarks_reported_not_regressed(self):
        old = artifact([("a", 100.0, 0.05), ("gone", 10.0, 0.05)])
        new = artifact([("a", 100.0, 0.05), ("added", 10.0, 0.05)])
        rows = {r.name: r for r in compare_artifacts(old, new)}
        assert set(rows) == {"a", "gone", "added"}
        assert rows["gone"].ratio is None and not rows["gone"].regressed
        assert rows["added"].ratio is None and not rows["added"].regressed

    def test_default_threshold_is_quarter(self):
        assert DEFAULT_THRESHOLD == 0.25

    def test_format_row_marks_regression(self):
        old = artifact([("a", 100.0, 0.01)])
        new = artifact([("a", 50.0, 0.01)])
        (row,) = compare_artifacts(old, new)
        assert "REGRESSED" in row.format_row()
