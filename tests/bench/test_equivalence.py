"""Cheap contract tests for the equivalence gate.

The gate's real work — recomputing behaviour digests over experiments,
corpus and traces — runs minutes, so it is exercised by ``python -m
repro.bench.equivalence`` before committing core changes (see
docs/performance.md), not by the unit suite.  What belongs here are the
guards: tier validation and the golden-file schema check, which protect
against silently comparing incompatible digests.
"""

import json

import pytest

from repro.bench.equivalence import (
    EQUIV_SCHEMA,
    FAST_EXPERIMENTS,
    check_golden,
    compute_digest,
)


def test_unknown_tier_rejected():
    with pytest.raises(ValueError, match="unknown tier"):
        compute_digest("bogus")


def test_wrong_schema_reported_not_compared(tmp_path):
    golden = tmp_path / "GOLDEN.json"
    golden.write_text(json.dumps({"schema": "repro-equivalence/v0", "sections": {}}))
    problems = check_golden(golden)
    assert len(problems) == 1
    assert EQUIV_SCHEMA in problems[0]


def test_fast_tier_experiments_are_registered():
    from repro.experiments.runner import EXPERIMENTS

    for name in FAST_EXPERIMENTS:
        assert name in EXPERIMENTS
