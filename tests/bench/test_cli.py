"""``repro-bench`` CLI: exit codes, artifacts, compare gating."""

import json

import pytest

from repro.bench.artifact import BENCH_SCHEMA, make_artifact, write_artifact
from repro.bench.cli import main
from repro.bench.micro import BENCHMARKS
from repro.bench.timing import Measurement
from repro.runtime import exitcodes


def write_bench(path, entries, label="t"):
    payload = make_artifact(
        [
            Measurement(
                name=name,
                unit="ops",
                ops_per_s=ops,
                median_ops_per_s=ops,
                spread=0.02,
                repeats=3,
                units_per_rep=100.0,
                best_s=100.0 / ops,
            )
            for name, ops in entries
        ],
        label=label,
        quick=True,
    )
    write_artifact(path, payload)
    return path


class TestList:
    def test_list_names_every_benchmark(self, capsys):
        assert main(["list"]) == exitcodes.EXIT_OK
        out = capsys.readouterr().out
        for name in BENCHMARKS:
            assert name in out


class TestRun:
    def test_run_single_quick_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_x.json"
        code = main(
            ["run", "hashfn.ipa_hash", "--quick", "--label", "x", "--out", str(out)]
        )
        assert code == exitcodes.EXIT_OK
        payload = json.loads(out.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["label"] == "x"
        assert payload["quick"] is True
        assert payload["benchmarks"]["hashfn.ipa_hash"]["ops_per_s"] > 0
        assert "hashfn.ipa_hash" in capsys.readouterr().out

    def test_unknown_benchmark_is_usage_error(self, capsys):
        assert main(["run", "no.such.bench"]) == exitcodes.EXIT_USAGE
        assert "no.such.bench" in capsys.readouterr().err

    def test_profile_writes_pstats_next_to_artifact(self, tmp_path, capsys):
        import pstats

        out = tmp_path / "artifacts" / "BENCH_x.json"
        out.parent.mkdir()
        code = main(
            ["run", "hashfn.ipa_hash", "--quick", "--label", "x",
             "--out", str(out), "--profile"]
        )
        assert code == exitcodes.EXIT_OK
        profile = out.parent / "BENCH_x.hashfn.ipa_hash.pstats"
        assert profile.exists()
        # The dump must load as real profiler stats with samples in it.
        assert pstats.Stats(str(profile)).total_calls > 0
        assert str(profile) in capsys.readouterr().out

    def test_profile_without_out_lands_in_cwd(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["run", "hashfn.ipa_hash", "--quick", "--label", "y", "--profile"]
        ) == exitcodes.EXIT_OK
        assert (tmp_path / "BENCH_y.hashfn.ipa_hash.pstats").exists()


class TestCompare:
    def test_clean_compare_exits_zero(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json", [("a", 100.0)])
        new = write_bench(tmp_path / "new.json", [("a", 120.0)])
        assert main(["compare", str(old), str(new)]) == exitcodes.EXIT_OK
        assert "ok:" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json", [("a", 100.0)])
        new = write_bench(tmp_path / "new.json", [("a", 40.0)])
        assert main(["compare", str(old), str(new)]) == exitcodes.EXIT_FAILURES
        assert "REGRESSION" in capsys.readouterr().err

    def test_threshold_flag_loosens_gate(self, tmp_path):
        old = write_bench(tmp_path / "old.json", [("a", 100.0)])
        new = write_bench(tmp_path / "new.json", [("a", 40.0)])
        code = main(["compare", str(old), str(new), "--threshold", "0.7"])
        assert code == exitcodes.EXIT_OK

    def test_missing_artifact_is_usage_error(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json", [("a", 100.0)])
        code = main(["compare", str(old), str(tmp_path / "absent.json")])
        assert code == exitcodes.EXIT_USAGE
        assert "not found" in capsys.readouterr().err


class TestTiming:
    def test_measure_counts_units_per_repetition(self):
        from repro.bench.timing import measure

        calls = []

        def workload():
            calls.append(1)
            return 50.0

        m = measure("t", workload, unit="ops", repeats=3, warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert m.repeats == 3
        assert m.units_per_rep == 50.0
        assert m.ops_per_s > 0
        assert 0.0 <= m.spread < 1.0

    def test_measure_rejects_zero_repeats(self):
        from repro.bench.timing import measure

        with pytest.raises(ValueError):
            measure("t", lambda: 1.0, repeats=0)
