"""The ``repro-attack`` CLI: subcommands, exit codes, JSON artifacts."""

import json

import pytest

from repro.attacks.cli import main
from repro.runtime import exitcodes


class TestChannelCommand:
    def test_clean_measurement(self, capsys):
        assert main(["channel", "--channel", "cache", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "raw symbol error rate 0.0000" in out
        assert "b/s goodput" in out

    def test_json_output(self, capsys):
        assert main(["channel", "--channel", "cache", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["channel"] == "cache"
        assert data["corrected_byte_errors"] == 0

    def test_out_file_round_trips(self, tmp_path, capsys):
        out = tmp_path / "chan.json"
        assert main(["channel", "--channel", "cache", "--out", str(out)]) == 0
        assert json.loads(out.read_text())["framing_failed"] is False

    def test_unknown_channel_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["channel", "--channel", "pigeon"])
        assert exc.value.code == exitcodes.EXIT_USAGE


class TestLeakCommand:
    @pytest.fixture(scope="class")
    def leak_file(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("leak") / "leak.json"
        capsys_code = main(["leak", "--mitigation", "all", "--out", str(out)])
        assert capsys_code == exitcodes.EXIT_OK
        return out

    def test_all_mitigations_reported(self, leak_file):
        data = json.loads(leak_file.read_text())
        assert [entry["mitigation"] for entry in data["reports"]] == [
            "none", "ssbd", "fence",
        ]

    def test_unmitigated_run_fully_recovers(self, leak_file):
        data = json.loads(leak_file.read_text())
        by_name = {entry["mitigation"]: entry for entry in data["reports"]}
        assert by_name["none"]["accuracy"] == 1.0
        assert by_name["none"]["recovered_hex"] == by_name["none"]["expected_hex"]

    def test_mitigated_runs_degrade(self, leak_file):
        data = json.loads(leak_file.read_text())
        by_name = {entry["mitigation"]: entry for entry in data["reports"]}
        for name in ("ssbd", "fence"):
            assert by_name[name]["accuracy"] < 1.0
            assert by_name[name]["failure"]

    def test_verify_accepts_the_contract(self, leak_file, capsys):
        assert main(["verify", str(leak_file)]) == exitcodes.EXIT_OK
        assert "verify ok" in capsys.readouterr().out

    def test_verify_rejects_missing_degradation(self, leak_file, tmp_path, capsys):
        data = json.loads(leak_file.read_text())
        for entry in data["reports"]:
            entry["accuracy"] = 1.0
            entry["cycles_per_byte"] = 100.0
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(data))
        assert main(["verify", str(doctored)]) == exitcodes.EXIT_FAILURES
        assert "NOT DEGRADED" in capsys.readouterr().out

    def test_verify_rejects_partial_baseline(self, leak_file, tmp_path, capsys):
        data = json.loads(leak_file.read_text())
        data["reports"][0]["accuracy"] = 0.5
        doctored = tmp_path / "partial.json"
        doctored.write_text(json.dumps(data))
        assert main(["verify", str(doctored)]) == exitcodes.EXIT_FAILURES

    def test_verify_requires_a_baseline(self, leak_file, tmp_path):
        data = json.loads(leak_file.read_text())
        data["reports"] = data["reports"][1:]  # drop "none"
        doctored = tmp_path / "nobase.json"
        doctored.write_text(json.dumps(data))
        assert main(["verify", str(doctored)]) == exitcodes.EXIT_USAGE


class TestAslrCommand:
    def test_successful_recovery_exits_zero(self, capsys):
        assert main(["aslr", "--seed", "4242"]) == exitcodes.EXIT_OK
        out = capsys.readouterr().out
        assert "(exact)" in out
        assert "bits recovered" in out

    def test_json_report(self, capsys):
        assert main(["aslr", "--seed", "4242", "--json"]) == exitcodes.EXIT_OK
        data = json.loads(capsys.readouterr().out)
        assert data["success"] is True
        assert data["sub_page_recovered"] is True


class TestUsageErrors:
    def test_missing_subcommand(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == exitcodes.EXIT_USAGE

    def test_unreadable_verify_file(self, tmp_path):
        assert main(["verify", str(tmp_path / "nope.json")]) == exitcodes.EXIT_USAGE


class TestRangeValidation:
    """Out-of-range numeric flags exit 2 up front, naming the flag."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["channel", "--width", "0"],
            ["channel", "--width", "17"],
            ["channel", "--repeat", "0"],
            ["channel", "--payload-bytes", "0"],
            ["channel", "--noise", "-0.1"],
            ["channel", "--noise", "1.1"],
            ["leak", "--redundancy", "0"],
            ["leak", "--slide-pages", "0"],
            ["leak", "--collision-budget", "0"],
            ["aslr", "--window-bits", "0"],
            ["aslr", "--region-pages", "1"],
        ],
    )
    def test_out_of_range_is_usage_error(self, argv, capsys):
        assert main(argv) == exitcodes.EXIT_USAGE
        err = capsys.readouterr().err
        flag = argv[1]
        assert flag in err and "must be" in err

    def test_bad_interference_preset_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["channel", "--interference", "hurricane"])
        assert exc.value.code == exitcodes.EXIT_USAGE


class TestInterferenceFlags:
    def test_channel_carries_the_preset_into_the_report(self, capsys):
        assert main([
            "channel", "--channel", "cache", "--width", "4",
            "--interference", "desktop", "--resync", "--json",
        ]) == exitcodes.EXIT_OK
        data = json.loads(capsys.readouterr().out)
        assert data["interference"] == "desktop"
        assert data["resync"] is True

    def test_channel_reports_are_rerun_identical(self, capsys):
        argv = [
            "channel", "--channel", "cache", "--width", "4",
            "--interference", "noisy-neighbor", "--json",
        ]
        assert main(argv) == exitcodes.EXIT_OK
        first = capsys.readouterr().out
        assert main(argv) == exitcodes.EXIT_OK
        assert capsys.readouterr().out == first
