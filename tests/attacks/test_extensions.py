"""Tests for the covert channel, in-place baseline, and VA->PA leak."""

import pytest

from repro.attacks.address_leak import AddressMappingLeak
from repro.attacks.covert_channel import ChannelReport, SsbpCovertChannel
from repro.attacks.spectre_stl_inplace import SpectreSTLInPlace


@pytest.fixture(scope="module")
def channel():
    chan = SsbpCovertChannel()
    chan.handshake()
    return chan


class TestCovertChannel:
    def test_handshake_within_vulnerability_2_bound(self, channel):
        assert 1 <= channel.handshake_attempts <= 4096

    def test_no_shared_mappings(self, channel):
        sender_frames = {
            m.frame for m in channel.sender_process.address_space.pages().values()
        }
        receiver_frames = {
            m.frame for m in channel.receiver_process.address_space.pages().values()
        }
        assert not sender_frames & receiver_frames

    def test_transmits_bits_exactly(self, channel):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 0]
        report = channel.transmit(bits)
        assert report.received == bits
        assert report.error_rate == 0.0

    def test_all_zeros_and_all_ones(self, channel):
        assert channel.transmit([0] * 8).received == [0] * 8
        assert channel.transmit([1] * 8).received == [1] * 8

    def test_bandwidth_positive(self, channel):
        report = channel.transmit([1, 0, 1])
        assert report.bits_per_second > 0

    def test_report_math(self):
        report = ChannelReport(
            sent=[1, 0, 1], received=[1, 1, 1], cycles=3_700_000_000, clock_ghz=3.7
        )
        assert report.errors == 1
        assert report.error_rate == pytest.approx(1 / 3)
        assert report.bits_per_second == pytest.approx(3.0)


class TestInPlaceBaseline:
    @pytest.fixture(scope="class")
    def report(self):
        attack = SpectreSTLInPlace()
        return attack.leak(b"\x11\x22\x33")

    def test_leaks_correctly(self, report):
        assert report.recovered == b"\x11\x22\x33"
        assert report.accuracy == 1.0

    def test_needs_many_victim_invocations(self, report):
        """The limitation the paper's out-of-place attack removes: the
        victim's own pair must be executed repeatedly per byte."""
        assert report.invocations_per_byte >= 5


class TestAddressLeak:
    @pytest.fixture(scope="class")
    def leak(self):
        return AddressMappingLeak(pages=4)

    def test_recovers_relative_frame_hashes(self, leak):
        for item in leak.recover_all():
            truth = leak.true_relative_hash(item.page_i, item.page_j)
            assert item.recovered == truth

    def test_attempts_bounded_by_one_page(self, leak):
        item = leak.recover_pair(0, 2)
        assert 1 <= item.attempts <= 4096

    def test_leak_is_nontrivial(self, leak):
        """The recovered values actually carry frame information (they
        are not all zero for distinct random frames)."""
        values = {item.recovered for item in leak.recover_all()}
        assert values != {0}
