"""Tests for SSBP process fingerprinting (Fig 11)."""

import numpy as np
import pytest

from repro.analysis.svm import OneVsRestSvm, train_test_split
from repro.attacks.fingerprint import SsbpFingerprinter, collect_dataset
from repro.cpu.machine import Machine
from repro.workloads.cnn import CNN_MODELS, CnnVictim


@pytest.fixture(scope="module")
def small_dataset():
    models = {k: CNN_MODELS[k] for k in ("vgg16", "mobilenetv2", "googlenet")}
    return collect_dataset(models, samples_per_model=3, rounds=5)


class TestFingerprinter:
    def test_probe_round_reads_counts(self):
        machine = Machine(seed=21)
        victim = CnnVictim(machine, CNN_MODELS["vgg16"])
        fingerprinter = SsbpFingerprinter(machine)
        for _ in range(4):
            victim.inference_pass()
        values = fingerprinter.probe_round()
        assert len(values) == len(fingerprinter.probes)
        assert any(v > 0 for v in values)  # the victim left C3 residue

    def test_fingerprint_vector_normalized(self):
        machine = Machine(seed=22)
        victim = CnnVictim(machine, CNN_MODELS["alexnet"])
        fingerprinter = SsbpFingerprinter(machine)
        vector = fingerprinter.fingerprint(victim, rounds=5)
        assert len(vector) == 35
        assert sum(vector) == pytest.approx(1.0)


class TestDataset:
    def test_shapes(self, small_dataset):
        features, labels, names = small_dataset
        assert features.shape == (9, 35)
        assert sorted(set(labels.tolist())) == [0, 1, 2]
        assert len(names) == 3

    def test_vectors_are_informative(self, small_dataset):
        features, _, _ = small_dataset
        assert np.all(features.sum(axis=1) > 0)

    def test_models_have_distinct_signatures(self, small_dataset):
        features, labels, _ = small_dataset
        centroids = [features[labels == c].mean(axis=0) for c in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.linalg.norm(centroids[i] - centroids[j]) > 0.05

    def test_svm_classifies_models(self, small_dataset):
        """The Fig 11 result at test scale: held-out fingerprints are
        attributed to the right model (paper: > 95.5% over 6 models)."""
        features, labels, _ = small_dataset
        Xtr, ytr, Xte, yte = train_test_split(features, labels, 0.34, seed=3)
        clf = OneVsRestSvm(epochs=120).fit(Xtr, ytr)
        assert clf.score(Xte, yte) >= 0.67  # small-sample bound
