"""ASLR derandomization through predictor collisions."""

import math

import pytest

from repro.attacks.aslr import AslrDerandomizer
from repro.cpu.machine import Machine
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def outcome():
    derandomizer = AslrDerandomizer(Machine(seed=4242))
    return derandomizer, derandomizer.recover()


class TestSubPageRecovery:
    def test_recovers_the_exact_placement(self, outcome):
        derandomizer, report = outcome
        assert report.recovered_sub_offset == derandomizer.true_sub_offset
        assert report.sub_page_recovered

    def test_needs_only_unprivileged_probes(self, outcome):
        derandomizer, report = outcome
        # Everything is accounted for as probes (attacker-local loads)
        # or victim invocations (calling the victim's own routines).
        assert report.probes > 0
        assert report.victim_invocations > 0


class TestPhysicalWindowNarrowing:
    def test_candidate_set_shrinks_but_keeps_the_truth(self, outcome):
        derandomizer, report = outcome
        assert 0 < report.candidates_remaining < 1 << report.window_bits
        assert report.true_base_in_candidates

    def test_partial_bits_match_the_carry_chain_limit(self, outcome):
        _, report = outcome
        # Hash differences of nearby frames depend only on the carry
        # pattern, so narrowing is partial (SPOILER-style), never total.
        assert 1.0 <= report.physical_bits_recovered < report.window_bits
        expected = report.window_bits - math.log2(report.candidates_remaining)
        assert report.physical_bits_recovered == pytest.approx(expected)

    def test_success_summarizes_both_phases(self, outcome):
        _, report = outcome
        assert report.success
        data = report.to_dict()
        assert data["success"] is True
        assert data["sub_page_recovered"] is True
        assert data["candidates_remaining"] == report.candidates_remaining


class TestDeterminism:
    def test_same_seed_same_report(self, outcome):
        _, report = outcome
        again = AslrDerandomizer(Machine(seed=4242)).recover()
        assert again.to_dict() == report.to_dict()


class TestConfiguration:
    def test_distance_beyond_region_rejected(self):
        with pytest.raises(ConfigError):
            AslrDerandomizer(
                Machine(seed=1), region_pages=8, site_distances=(1, 8)
            )

    def test_victim_region_is_physically_contiguous(self, outcome):
        derandomizer, _ = outcome
        space = derandomizer.victim_process.address_space
        base_page = derandomizer.region_va >> 12
        frames = [space.mapping(base_page + index).frame for index in range(4)]
        assert frames == list(range(frames[0], frames[0] + 4))

    def test_ground_truth_lives_inside_the_window(self, outcome):
        derandomizer, _ = outcome
        assert 0 <= derandomizer.true_secret < 1 << derandomizer.window_bits
