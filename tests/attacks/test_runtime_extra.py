"""Extra coverage for the attacker runtime's training primitives."""

import pytest

from repro.attacks.runtime import AttackerStld
from repro.core.exec_types import TimingClass
from repro.cpu.machine import Machine
from repro.mitigations.secure_timer import SecureTimer
from repro.revng.stld import build_stld


@pytest.fixture(scope="module")
def rig():
    machine = Machine(seed=314)
    process = machine.kernel.create_process("attacker")
    return machine, AttackerStld(machine, process, slide_pages=4)


class TestPumpC4:
    def test_pump_then_single_g_charges(self, rig):
        machine, attacker = rig
        program = attacker.place_at(attacker.slide_base + 700)
        attacker.pump_c4(program)
        # After the pump, the entry reads drained...
        assert attacker.observe(program, aliasing=False) is TimingClass.BYPASS
        # ...and ONE further G event charges C3 fully (C4 saturated).
        attacker.run(program, aliasing=True)
        drained = attacker.drain_c3(program)
        assert drained >= 14


class TestDrainConfirmations:
    def test_confirmed_drain_counts_like_plain_drain(self, rig):
        machine, attacker = rig
        program = attacker.place_at(attacker.slide_base + 1900)
        attacker.charge_c3(program)
        attacker.drain_confirmations = 2
        try:
            drained = attacker.drain_c3(program)
        finally:
            attacker.drain_confirmations = 1
        assert drained >= 14
        assert attacker.observe(program, aliasing=False) is TimingClass.BYPASS


class TestCustomTemplate:
    def test_short_template_still_separates_classes(self):
        machine = Machine(seed=315)
        process = machine.kernel.create_process("short")
        attacker = AttackerStld(
            machine,
            process,
            slide_pages=2,
            template=build_stld(agen_imuls=6, consumer_imuls=4),
        )
        assert attacker.classifier.margin() >= 2.0
        program = attacker.place_at(attacker.slide_base + 600)
        assert attacker.observe(program, aliasing=False) is TimingClass.BYPASS


class TestSecureTimerOnRuntime:
    def test_probing_breaks_under_coarse_timer(self):
        """With a 512-cycle timer, charge/drain become unobservable: a
        charged entry reads the same class as a fresh one."""
        machine = Machine(seed=316)
        process = machine.kernel.create_process("blinded")
        attacker = AttackerStld(
            machine, process, slide_pages=2,
            timer=SecureTimer(resolution=512, jitter=0),
        )
        program = attacker.place_at(attacker.slide_base + 640)
        fresh = attacker.run(program, aliasing=False)
        attacker.charge_c3(program)
        charged = attacker.run(program, aliasing=False)
        assert fresh == charged  # both quantized to the same reading
