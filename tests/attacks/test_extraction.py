"""End-to-end secret extraction: the PR's acceptance criteria as tests.

The suite fixture runs the full three-mitigation campaign once (the
slowest fixture in the test suite, by design — it IS the acceptance
run): ``none`` must recover a 16-byte secret with 100% byte accuracy,
and both mitigations must degrade the attack measurably.
"""

import pytest

from repro.attacks.extraction import (
    DEFAULT_COLLISION_BUDGET,
    SecretExtraction,
    run_suite,
)

SECRET = bytes((index * 37 + 11) & 0xFF for index in range(16))


@pytest.fixture(scope="module")
def suite():
    reports = run_suite(SECRET, seed=2024)
    return {report.mitigation: report for report in reports}


class TestUnmitigatedRecovery:
    def test_recovers_every_byte(self, suite):
        report = suite["none"]
        assert report.accuracy == 1.0
        assert report.recovered == SECRET
        assert report.failure is None

    def test_secret_is_long_enough_to_count(self):
        assert len(SECRET) >= 16

    def test_cost_accounting_present(self, suite):
        report = suite["none"]
        assert report.cycles > 0
        assert report.cycles_per_byte > 0
        assert report.bytes_per_second > 0
        assert report.validation_attempts >= 1


class TestMitigationDeltas:
    """ssbd/fence must *measurably* degrade recovery vs the baseline."""

    @pytest.mark.parametrize("mitigation", ["ssbd", "fence"])
    def test_accuracy_strictly_below_baseline(self, suite, mitigation):
        assert suite[mitigation].accuracy < suite["none"].accuracy

    @pytest.mark.parametrize("mitigation", ["ssbd", "fence"])
    def test_mitigated_campaign_fails_cleanly(self, suite, mitigation):
        report = suite[mitigation]
        assert report.failure is not None
        assert report.recovered != SECRET
        assert report.byte_errors == len(SECRET)

    @pytest.mark.parametrize("mitigation", ["ssbd", "fence"])
    def test_attacker_still_pays_cycles(self, suite, mitigation):
        # The mitigations do not make the attack free to *attempt*; the
        # burnt budget is the cost they impose.
        assert suite[mitigation].cycles > 0

    def test_fence_starves_the_collision_scan(self, suite):
        # Fenced victims never charge a predictor entry, so not one
        # candidate collision is even found (vs ssbd, where trivially
        # sticky candidates appear but none validates).
        assert suite["fence"].validation_attempts == 0
        assert suite["ssbd"].validation_attempts > 0


class TestDeterminism:
    def test_same_seed_same_report(self, suite):
        again = SecretExtraction(seed=2024, mitigation="none").run(SECRET)
        assert again.to_dict() == suite["none"].to_dict()


class TestValidation:
    def test_unknown_mitigation_rejected(self):
        with pytest.raises(ValueError):
            SecretExtraction(mitigation="prayer")

    def test_redundancy_validated(self):
        with pytest.raises(ValueError):
            SecretExtraction(redundancy=0)

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            SecretExtraction().run(b"")

    def test_budget_covers_two_pages(self):
        # The scan resumes past the previous hit, so the next colliding
        # offset can be nearly two pages away; the default budget must
        # cover that or unmitigated campaigns give up spuriously.
        assert DEFAULT_COLLISION_BUDGET > 2 * 4096
