"""Channel coding layer: packing, repetition, framing."""

import pytest

from repro.attacks.coding import (
    FramingError,
    bytes_to_symbols,
    decode_repetition,
    deframe_symbols,
    encode_repetition,
    frame_symbols,
    preamble_symbols,
    symbols_to_bytes,
)


class TestPacking:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 8, 16])
    def test_round_trip_every_width(self, width):
        data = bytes(range(256))
        symbols = bytes_to_symbols(data, width)
        assert symbols_to_bytes(symbols, width, len(data)) == data

    def test_lsb_first_order(self):
        # 0xb4 = 0b10110100 -> 2-bit symbols from the low end.
        assert bytes_to_symbols(b"\xb4", 2) == [0b00, 0b01, 0b11, 0b10]

    def test_final_symbol_zero_padded(self):
        # 8 bits into 3-bit symbols: the last symbol holds 2 data bits.
        assert bytes_to_symbols(b"\xff", 3) == [0b111, 0b111, 0b011]

    def test_symbols_in_range(self):
        for symbol in bytes_to_symbols(bytes(range(64)), 5):
            assert 0 <= symbol < 32

    def test_too_few_symbols_raises(self):
        with pytest.raises(ValueError):
            symbols_to_bytes([1, 2], 2, 10)

    @pytest.mark.parametrize("width", [0, -1, 17])
    def test_width_validated(self, width):
        with pytest.raises(ValueError):
            bytes_to_symbols(b"x", width)


class TestRepetition:
    def test_encode_repeats_in_place(self):
        assert encode_repetition([1, 2], 3) == [1, 1, 1, 2, 2, 2]

    def test_clean_round_trip(self):
        symbols = [3, 0, 2, 1]
        coded = encode_repetition(symbols, 5)
        assert decode_repetition(coded, 5, 2) == symbols

    def test_corrects_minority_corruption(self):
        coded = encode_repetition([2, 1], 3)
        coded[0] ^= 3  # one of three copies of each symbol corrupted
        coded[5] ^= 2
        assert decode_repetition(coded, 3, 2) == [2, 1]

    def test_bitwise_majority_beats_symbol_plurality(self):
        # Three copies of 0b11, each hit in a different bit: no symbol
        # value repeats, but each bit still has a 2/3 majority.
        assert decode_repetition([0b01, 0b10, 0b11], 3, 2) == [0b11]

    def test_even_split_decodes_to_zero(self):
        assert decode_repetition([1, 0], 2, 1) == [0]

    def test_repeat_validated(self):
        with pytest.raises(ValueError):
            encode_repetition([1], 0)
        with pytest.raises(ValueError):
            decode_repetition([1], 0, 1)


class TestFraming:
    def test_preamble_alternates_and_marks_every_lane(self):
        assert preamble_symbols(2, 4) == [3, 0, 3, 0]
        assert preamble_symbols(1, 8) == [1, 0] * 4

    def test_frame_round_trip(self):
        payload = bytes_to_symbols(b"hello", 2)
        assert deframe_symbols(frame_symbols(payload, 2), 2) == payload

    def test_receiver_skips_lead_in(self):
        payload = [1, 2, 3]
        stream = [0] * 7 + frame_symbols(payload, 2)
        assert deframe_symbols(stream, 2) == payload

    def test_fuzzy_preamble_tolerates_errors(self):
        payload = [2, 0, 1]
        stream = frame_symbols(payload, 2, preamble_len=8)
        stream[2] ^= 1  # corrupt a mid-preamble symbol
        assert deframe_symbols(stream, 2, preamble_len=8) == payload

    def test_idle_zeros_do_not_false_sync(self):
        # A window overlapping lead zeros differs from the preamble in
        # only its first symbol; anchoring on the all-ones mark must
        # reject it rather than syncing one symbol early.
        payload = [1, 3, 2, 0]
        stream = [0] * 3 + frame_symbols(payload, 2)
        assert deframe_symbols(stream, 2) == payload

    def test_repetition_protects_the_length_field(self):
        payload = [1, 2, 3, 0]
        stream = frame_symbols(payload, 2, preamble_len=8, repeat=3)
        stream[8] ^= 3  # first copy of the length field's first symbol
        assert deframe_symbols(stream, 2, preamble_len=8, repeat=3) == payload

    def test_missing_preamble_raises(self):
        with pytest.raises(FramingError):
            deframe_symbols([0, 1, 2] * 10, 2)

    def test_truncated_payload_raises(self):
        stream = frame_symbols([1] * 6, 2)
        with pytest.raises(FramingError):
            deframe_symbols(stream[:-3], 2)

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            frame_symbols([0] * (1 << 16), 1)
