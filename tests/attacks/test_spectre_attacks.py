"""End-to-end tests for the Spectre-STL, Spectre-CTL and web attacks.

These run the complete attack chains (collision search included), so
they are the slowest tests in the suite; the full campaigns with paper
metrics live in the benchmark/experiment layer.
"""

import pytest

from repro.attacks.spectre_ctl import SpectreCTL
from repro.attacks.spectre_stl import SpectreSTL
from repro.attacks.web import BrowserTimer, SpectreCTLWeb
from repro.cpu.machine import Machine
from repro.osm.domains import SecurityDomain


@pytest.fixture(scope="module")
def stl():
    attack = SpectreSTL()
    attack.find_collision()
    return attack


@pytest.fixture(scope="module")
def ctl():
    attack = SpectreCTL()
    attack.find_collisions()
    return attack


class TestSpectreSTL:
    def test_collision_is_validated(self, stl):
        assert stl.collision is not None
        assert stl.validation_attempts <= 16  # the paper's 16-page budget

    def test_leaks_bytes_correctly(self, stl):
        report = stl.leak(b"\x01\x7f\xfe")
        assert report.recovered == b"\x01\x7f\xfe"
        assert report.accuracy == 1.0

    def test_leaks_zero_byte_via_decoy(self, stl):
        report = stl.leak(b"\x00A")
        assert report.recovered == b"\x00A"

    def test_bandwidth_is_positive(self, stl):
        report = stl.leak(b"xy")
        assert report.bytes_per_second > 0
        assert report.cycles > 0

    def test_single_process(self, stl):
        """Spectre-STL stays inside one process: attacker and victim
        share the address space (PSFP dies on context switches)."""
        assert stl.attacker.process is stl.process


class TestSpectreCTL:
    def test_finds_two_distinct_collisions(self, ctl):
        assert ctl.load1_collision is not None
        assert ctl.load3_collision is not None
        assert ctl.load1_collision.iva != ctl.load3_collision.iva

    def test_cross_process_leak(self, ctl):
        report = ctl.leak(b"\x42\x00")
        assert report.recovered == b"\x42\x00"
        assert report.accuracy == 1.0

    def test_secret_is_victim_private(self, ctl):
        """The secret lives in memory the attacker has no mapping for."""
        page = ctl.secret_va >> 12
        assert ctl.attacker_process.address_space.mapping(page) is None

    def test_processes_are_distinct(self, ctl):
        assert ctl.victim.pid != ctl.attacker_process.pid


class TestSpectreCTLKernelVictim:
    def test_leaks_from_kernel_thread(self):
        """Section V-C: the attack also works against a kernel victim,
        because SSBP is shared across security domains (Vulnerability 1)."""
        attack = SpectreCTL(victim_domain=SecurityDomain.KERNEL)
        attack.find_collisions()
        report = attack.leak(b"\x5a")
        assert report.recovered == b"\x5a"


class TestBrowserTimer:
    def test_quantizes_to_ticks(self):
        machine = Machine(seed=1)
        timer = BrowserTimer(machine, resolution_ns=10.0, double_tick_prob=0.0)
        assert timer(100) % timer.tick_cycles == 0

    def test_ten_nanoseconds_at_3_7_ghz(self):
        machine = Machine(seed=1)
        timer = BrowserTimer(machine, resolution_ns=10.0, double_tick_prob=0.0)
        assert timer.tick_cycles == 37

    def test_jitter_moves_whole_ticks(self):
        machine = Machine(seed=1)
        timer = BrowserTimer(machine, double_tick_prob=1.0)
        readings = {timer(200) for _ in range(20)}
        assert all(r % timer.tick_cycles == 0 for r in readings)
        assert len(readings) == 2  # +/- 2 ticks around 200


class TestSpectreCTLWeb:
    def test_web_attack_leaks_with_degraded_accuracy(self):
        attack = SpectreCTLWeb()
        attack.find_collisions()
        report = attack.leak(bytes(range(10, 22)))
        # The browser variant trades accuracy for sandbox survival: the
        # paper reports 81.1%; we demand "substantial but imperfect".
        assert 0.4 <= report.accuracy <= 1.0
        assert report.bytes_per_second > 0

    def test_web_slower_than_native(self):
        native = SpectreCTL()
        native.find_collisions()
        native_report = native.leak(b"abcd")
        web = SpectreCTLWeb()
        web.find_collisions()
        web_report = web.leak(b"abcd")
        native_rate = native_report.bytes_per_second
        web_rate = web_report.bytes_per_second
        assert web_rate < native_rate
