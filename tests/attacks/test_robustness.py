"""The hardened attack stack: resync framing, guarded capacity reports,
and extraction under the interference presets (docs/interference.md)."""

import pytest

from repro.attacks import coding
from repro.attacks.capacity import CapacityConfig, CapacityReport, measure_capacity
from repro.attacks.extraction import SecretExtraction
from repro.telemetry.metrics import registry


def _decoy_stream(width=2, payload_bytes=b"\xb4\x7e"):
    """A stream whose first sync point announces an impossible frame,
    followed by a genuine parseable frame."""
    payload = coding.bytes_to_symbols(payload_bytes, width)
    decoy = coding.preamble_symbols(width) + coding.bytes_to_symbols(
        (1000).to_bytes(2, "little"), width
    )
    return decoy + coding.frame_symbols(payload, width), payload


class TestFramingResync:
    def test_default_receiver_dies_on_the_decoy(self):
        stream, _ = _decoy_stream()
        with pytest.raises(coding.FramingError, match="announces 1000"):
            coding.deframe_symbols(stream, 2)

    def test_resync_recovers_the_later_frame(self):
        stream, payload = _decoy_stream()
        assert coding.deframe_symbols(stream, 2, resync=True) == payload

    def test_resync_counts_abandoned_sync_points(self):
        stream, _ = _decoy_stream()
        before = registry().counter("attack.resync").value
        coding.deframe_symbols(stream, 2, resync=True)
        assert registry().counter("attack.resync").value > before

    def test_resync_reraises_when_no_frame_follows(self):
        dead_end = coding.preamble_symbols(2) + coding.bytes_to_symbols(
            (1000).to_bytes(2, "little"), 2
        )
        with pytest.raises(coding.FramingError, match="announces 1000"):
            coding.deframe_symbols(dead_end, 2, resync=True)


class TestCapacityGuards:
    def _report(self, **overrides):
        fields = dict(
            config=CapacityConfig(payload_bytes=8),
            symbols_on_wire=40,
            raw_symbol_errors=0,
            corrected_byte_errors=0,
            framing_failed=False,
            cycles=1000,
            clock_ghz=3.7,
        )
        fields.update(overrides)
        return CapacityReport(**fields)

    def test_empty_wire_has_no_error_rate(self):
        report = self._report(symbols_on_wire=0)
        assert report.raw_symbol_error_rate == 0.0
        assert report.confidence == 0.0

    def test_zero_payload_has_no_byte_error_rate(self):
        report = self._report(config=CapacityConfig(payload_bytes=0))
        assert report.corrected_byte_error_rate == 0.0

    def test_zero_cycles_yield_zero_throughput(self):
        report = self._report(cycles=0)
        assert report.gross_bits_per_second == 0.0
        assert report.goodput_bits_per_second == 0.0

    def test_transport_failure_is_all_lost_with_zero_confidence(self):
        report = self._report(
            failure="AttackError: lane handshakes converged",
            corrected_byte_errors=8,
        )
        assert report.all_lost
        assert report.recovered_bytes == 0
        assert report.confidence == 0.0
        data = report.to_dict()
        assert data["all_lost"] is True
        assert data["failure"].startswith("AttackError")


class TestCapacityUnderInterference:
    def test_interference_point_is_deterministic(self):
        config = CapacityConfig(
            channel="cache", width=4, repeat=3, payload_bytes=8,
            noise=0.05, seed=41, interference="desktop", resync=True,
        )
        first = measure_capacity(config).to_dict()
        second = measure_capacity(config).to_dict()
        assert first == second
        assert first["interference"] == "desktop"

    def test_unknown_preset_rejected_before_any_machine_work(self):
        with pytest.raises(ValueError, match="unknown interference preset"):
            measure_capacity(CapacityConfig(interference="hurricane"))


class TestHardenedExtraction:
    @pytest.fixture(scope="class")
    def noisy_report(self):
        secret = bytes((index * 29 + 5) & 0xFF for index in range(8))
        campaign = SecretExtraction(
            seed=2024, interference="noisy-neighbor", hardened=True
        )
        return campaign.run(secret), secret

    def test_recovers_under_noise(self, noisy_report):
        report, secret = noisy_report
        assert report.accuracy >= 0.8
        assert len(report.byte_confidence) == len(secret)

    def test_report_names_its_environment(self, noisy_report):
        report, _ = noisy_report
        assert report.interference == "noisy-neighbor"
        assert report.hardened is True
        data = report.to_dict()
        assert data["interference"] == "noisy-neighbor"
        for key in ("mean_confidence", "low_confidence_bytes",
                    "degraded", "retries", "recalibrations"):
            assert key in data

    def test_confidence_bounded_and_degradation_consistent(self, noisy_report):
        report, _ = noisy_report
        assert all(0.0 <= c <= 1.0 for c in report.byte_confidence)
        flagged = sum(
            c < report.CONFIDENCE_FLOOR for c in report.byte_confidence
        )
        assert report.low_confidence_bytes == flagged
        assert report.degraded == (report.failure is None and flagged > 0)

    def test_quiet_campaign_reports_unattached(self):
        secret = b"\x11\x22\x33\x44"
        report = SecretExtraction(seed=2024).run(secret)
        assert report.interference is None
        assert report.accuracy == 1.0
        assert report.retries == 0
        assert report.recalibrations == 0
