"""Symbol transports and the capacity harness."""

import pytest

from repro.attacks.capacity import (
    CapacityConfig,
    build_channel,
    measure_capacity,
)
from repro.attacks.channels import (
    CacheLineChannel,
    NoisyChannel,
    StlPredictorChannel,
)
from repro.cpu.machine import Machine


class TestCacheLineChannel:
    def test_round_trip(self):
        channel = CacheLineChannel(Machine(seed=5), width=4)
        symbols = list(range(16)) + [5, 0, 15]
        assert channel.transfer(symbols) == symbols
        assert channel.erasures == 0

    def test_arity_matches_width(self):
        assert CacheLineChannel(Machine(seed=5), width=3).arity == 8

    def test_sender_cannot_write_the_shared_mapping(self):
        from repro.errors import ProtectionFault

        channel = CacheLineChannel(Machine(seed=5), width=2)
        with pytest.raises(ProtectionFault):
            channel.machine.kernel.write(
                channel.sender_process, channel.sender_base, b"\x01"
            )

    def test_width_validated(self):
        with pytest.raises(ValueError):
            CacheLineChannel(Machine(seed=5), width=0)


class TestStlPredictorChannel:
    @pytest.fixture(scope="class")
    def channel(self):
        channel = StlPredictorChannel(Machine(seed=1234), width=1)
        channel.handshake()
        return channel

    def test_handshake_finds_each_lane(self, channel):
        assert len(channel.rx_programs) == channel.width
        assert all(attempts > 0 for attempts in channel.handshake_attempts)

    def test_round_trip_without_shared_memory(self, channel):
        symbols = [1, 0, 1, 1, 0, 0, 1, 0]
        assert channel.transfer(symbols) == symbols

    def test_processes_share_no_mappings(self, channel):
        sender_frames = {
            mapping.frame
            for mapping in channel.sender_process.address_space.pages().values()
        }
        receiver_frames = {
            mapping.frame
            for mapping in channel.receiver_process.address_space.pages().values()
        }
        assert not sender_frames & receiver_frames

    def test_width_validated(self):
        with pytest.raises(ValueError):
            StlPredictorChannel(Machine(seed=1), width=9)


class TestNoisyChannel:
    def _clean(self):
        return CacheLineChannel(Machine(seed=5), width=2)

    def test_zero_noise_is_transparent(self):
        noisy = NoisyChannel(self._clean(), 0.0, seed=3)
        assert noisy.transfer([1, 2, 3, 0]) == [1, 2, 3, 0]
        assert noisy.flips == 0

    def test_full_noise_flips_every_symbol(self):
        noisy = NoisyChannel(self._clean(), 1.0, seed=3)
        noisy.transfer([0] * 40)
        assert noisy.flips == 40

    def test_same_seed_same_corruption(self):
        a = NoisyChannel(self._clean(), 0.3, seed=9).transfer([0] * 64)
        b = NoisyChannel(self._clean(), 0.3, seed=9).transfer([0] * 64)
        assert a == b

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            NoisyChannel(self._clean(), 1.5)


class TestCapacityHarness:
    def test_clean_cache_channel_is_error_free(self):
        report = measure_capacity(
            CapacityConfig(channel="cache", width=4, payload_bytes=16)
        )
        assert report.raw_symbol_errors == 0
        assert report.corrected_byte_errors == 0
        assert not report.framing_failed
        assert report.cycles > 0
        assert report.goodput_bits_per_second > 0

    def test_repetition_code_buys_back_noise(self):
        uncoded = measure_capacity(
            CapacityConfig(channel="cache", width=2, noise=0.08, seed=713)
        )
        coded = measure_capacity(
            CapacityConfig(channel="cache", width=2, repeat=3, noise=0.08, seed=713)
        )
        assert uncoded.corrected_byte_errors > 0
        assert coded.corrected_byte_errors == 0
        # The price of the redundancy is wire time, visible in goodput.
        assert coded.symbols_on_wire > uncoded.symbols_on_wire

    def test_deterministic_for_a_seed(self):
        config = CapacityConfig(channel="cache", width=2, payload_bytes=8, seed=42)
        assert measure_capacity(config).to_dict() == measure_capacity(config).to_dict()

    def test_gross_exceeds_goodput(self):
        report = measure_capacity(
            CapacityConfig(channel="cache", width=2, repeat=3, payload_bytes=8)
        )
        assert report.gross_bits_per_second > report.goodput_bits_per_second

    def test_unknown_channel_kind_rejected(self):
        with pytest.raises(ValueError):
            build_channel(CapacityConfig(channel="smoke-signals"))

    def test_to_dict_is_json_shaped(self):
        import json

        report = measure_capacity(CapacityConfig(channel="cache", payload_bytes=4))
        assert json.loads(json.dumps(report.to_dict()))["channel"] == "cache"
