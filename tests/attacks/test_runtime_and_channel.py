"""Tests for the attacker runtime, Flush+Reload, and collision search."""

import pytest

from repro.attacks.collision import SsbpCollisionFinder
from repro.attacks.flush_reload import FlushReloadChannel
from repro.attacks.runtime import AttackerStld
from repro.core.exec_types import TimingClass
from repro.core.hashfn import ipa_hash
from repro.cpu.machine import Machine
from repro.errors import CollisionNotFound, ReproError
from repro.osm.address_space import Perm
from repro.revng.stld import load_instruction_index


@pytest.fixture(scope="module")
def rig():
    machine = Machine(seed=42)
    process = machine.kernel.create_process("attacker")
    attacker = AttackerStld(machine, process, slide_pages=16)
    return machine, process, attacker


class TestAttackerStld:
    def test_self_calibration_covers_all_classes(self, rig):
        _, _, attacker = rig
        assert set(attacker.classifier.calibration.means) == set(TimingClass)

    def test_place_outside_region_rejected(self, rig):
        _, _, attacker = rig
        with pytest.raises(ReproError):
            attacker.place_at(attacker.slide_base - 1)

    def test_observe_fresh_is_bypass(self, rig):
        _, _, attacker = rig
        program = attacker.place_at(attacker.slide_base + 512)
        assert attacker.observe(program, aliasing=False) is TimingClass.BYPASS

    def test_charge_then_drain_roundtrip(self, rig):
        _, _, attacker = rig
        program = attacker.place_at(attacker.slide_base + 1024)
        attacker.charge_c3(program)
        drained = attacker.drain_c3(program)
        assert drained >= 14  # C3 was charged to 15
        assert attacker.observe(program, aliasing=False) is TimingClass.BYPASS

    def test_train_psf_reaches_forwarding(self, rig):
        _, _, attacker = rig
        program = attacker.place_at(attacker.slide_base + 2048)
        assert attacker.train_psf(program)
        # Confirmed state: another aliasing run still forwards.
        assert attacker.observe(program, aliasing=True) is TimingClass.PSF_FORWARD


class TestFlushReload:
    @pytest.fixture(scope="class")
    def channel(self, rig):
        machine, process, _ = rig
        base = machine.kernel.map_anonymous(process, pages=256)
        return FlushReloadChannel(machine, process, base)

    def test_threshold_between_hit_and_miss(self, channel):
        lat = channel.machine.core.model.latency
        assert lat.l1_hit < channel.threshold < lat.memory

    def test_receive_nothing_after_flush(self, channel):
        channel.flush_all()
        assert channel.receive() is None

    def test_receive_single_touched_slot(self, channel):
        channel.flush_all()
        # Victim stand-in: touch slot 42.
        paddr = channel.machine.kernel.translate(
            channel.process, channel.base_va + 42 * channel.stride
        )
        channel.machine.core.hierarchy.load(paddr)
        assert channel.receive() == 42

    def test_receive_rejects_multiple_hits(self, channel):
        channel.flush_all()
        for slot in (7, 9):
            paddr = channel.machine.kernel.translate(
                channel.process, channel.base_va + slot * channel.stride
            )
            channel.machine.core.hierarchy.load(paddr)
        assert channel.receive() is None


class TestCollisionFinder:
    def test_finds_ground_truth_collision(self, rig):
        machine, process, attacker = rig
        target_region = machine.kernel.map_anonymous(
            process, pages=2, perms=Perm.RX, kind="code"
        )
        target = attacker.template.relocate(target_region + 96)
        finder = SsbpCollisionFinder(attacker, lambda: attacker.charge_c3(target))
        result = finder.find()
        load_index = load_instruction_index(attacker.template)
        target_ipa = process.address_space.translate_nofault(target.iva(load_index))
        found_ipa = process.address_space.translate_nofault(
            result.program.iva(load_index)
        )
        assert ipa_hash(target_ipa) == ipa_hash(found_ipa)
        assert 1 <= result.attempts <= 4096  # Vulnerability 2's bound

    def test_raises_when_nothing_charged(self, rig):
        _, _, attacker = rig
        finder = SsbpCollisionFinder(attacker, recharge=lambda: None)
        with pytest.raises(CollisionNotFound):
            finder.find(max_attempts=300)
