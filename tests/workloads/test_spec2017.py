"""Tests for the SPEC2017-like workload generators."""

import pytest

from repro.cpu.machine import Machine
from repro.workloads.spec2017 import (
    SPEC2017,
    WorkloadSpec,
    _pow2_mask,
    build_workload,
    prefill,
    workload_names,
)


class TestSpecs:
    def test_ten_benchmarks(self):
        assert len(SPEC2017) == 10

    def test_names_match_fig12(self):
        assert set(workload_names()) == {
            "perlbench", "gcc", "mcf", "omnetpp", "xalancbmk",
            "x264", "deepsjeng", "leela", "exchange2", "xz",
        }

    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", racing_loads=1.5, aliasing=0.0,
                         agen_depth=1, footprint_pages=1, alu_ratio=0.1)
        with pytest.raises(ValueError):
            WorkloadSpec("bad", racing_loads=0.1, aliasing=-0.1,
                         agen_depth=1, footprint_pages=1, alu_ratio=0.1)

    def test_headliners_are_store_forward_heavy(self):
        """perlbench/exchange2 carry the largest racing-load fractions
        (the Fig 12 >20% overhead pair)."""
        racing = {name: spec.racing_loads for name, spec in SPEC2017.items()}
        top_two = sorted(racing, key=racing.get, reverse=True)[:2]
        assert set(top_two) == {"perlbench", "exchange2"}


class TestPow2Mask:
    def test_exact_power(self):
        assert _pow2_mask(4096) == 4096 - 8

    def test_non_power_rounds_down(self):
        assert _pow2_mask(3 * 4096) == 2 * 4096 - 8

    def test_alignment(self):
        for pages in (1, 3, 5, 17):
            assert _pow2_mask(pages * 4096) % 8 == 0


class TestBuildWorkload:
    def test_deterministic(self):
        spec = SPEC2017["gcc"]
        a = build_workload(spec, data_base=0x1000, operations=50, seed=3)
        b = build_workload(spec, data_base=0x1000, operations=50, seed=3)
        assert a.instructions == b.instructions

    def test_seed_changes_program(self):
        spec = SPEC2017["gcc"]
        a = build_workload(spec, data_base=0x1000, operations=50, seed=3)
        b = build_workload(spec, data_base=0x1000, operations=50, seed=4)
        assert a.instructions != b.instructions

    def test_runs_to_completion(self):
        machine = Machine(seed=9)
        process = machine.kernel.create_process("w")
        spec = SPEC2017["leela"]
        data = machine.kernel.map_anonymous(process, pages=spec.footprint_pages)
        prefill(machine.kernel, process, data, spec.footprint_pages)
        program = machine.load_program(
            process, build_workload(spec, data, operations=100)
        )
        result = machine.run(process, program, max_steps=500_000)
        assert result.cycles > 0
        assert result.fault is None

    def test_all_specs_execute(self):
        for name, spec in SPEC2017.items():
            machine = Machine(seed=1)
            process = machine.kernel.create_process(name)
            data = machine.kernel.map_anonymous(process, pages=spec.footprint_pages)
            prefill(machine.kernel, process, data, spec.footprint_pages)
            program = machine.load_program(
                process, build_workload(spec, data, operations=60)
            )
            machine.run(process, program, max_steps=500_000)
