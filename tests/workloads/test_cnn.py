"""Tests for the CNN inference victims."""

from repro.cpu.machine import Machine
from repro.workloads.cnn import CNN_MODELS, CnnVictim, model_names


class TestModels:
    def test_six_models(self):
        assert len(CNN_MODELS) == 6

    def test_names_match_fig11_spirit(self):
        names = set(model_names())
        assert {"vgg16", "googlenet", "resnet18", "seresnet18"} <= names

    def test_models_have_distinct_profiles(self):
        profiles = {
            tuple((l.aliasing_runs, l.streaming_runs) for l in m.layers)
            for m in CNN_MODELS.values()
        }
        assert len(profiles) == len(CNN_MODELS)

    def test_total_runs_positive(self):
        for model in CNN_MODELS.values():
            assert model.total_runs > 0


class TestCnnVictim:
    def test_inference_pass_trains_ssbp(self):
        machine = Machine(seed=11)
        victim = CnnVictim(machine, CNN_MODELS["alexnet"])
        unit = machine.core.thread(0).unit
        for _ in range(3):
            victim.inference_pass()
        # The model's aliasing layers left SSBP residue behind.
        assert unit.ssbp.occupancy > 0

    def test_layers_have_distinct_code_addresses(self):
        machine = Machine(seed=11)
        victim = CnnVictim(machine, CNN_MODELS["alexnet"])
        bases = {program.base_iva for program in victim._layer_programs}
        assert len(bases) == len(victim.model.layers)
