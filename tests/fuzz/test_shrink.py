"""Shrinker: minimality, determinism, flaky-predicate safety."""

from repro.cpu.isa import AluImm, Halt, MovImm
from repro.fuzz.shrink import shrink, shrink_report


def _program(n):
    return [MovImm(f"r{i % 4}", i) for i in range(n)] + [Halt()]


def test_shrinks_to_relevant_core():
    # Failure: program contains the MovImm with imm == 13.
    def reproduces(candidate):
        return any(isinstance(i, MovImm) and i.value == 13 for i in candidate)

    minimized = shrink(_program(40), reproduces)
    assert len(minimized) == 1
    assert minimized[0].value == 13


def test_one_minimal_for_conjunction():
    # Needs BOTH imm==3 and imm==17 present: every survivor is necessary.
    def reproduces(candidate):
        imms = {i.value for i in candidate if isinstance(i, MovImm)}
        return {3, 17} <= imms

    minimized = shrink(_program(30), reproduces)
    assert sorted(i.value for i in minimized) == [3, 17]
    for index in range(len(minimized)):
        assert not reproduces(minimized[:index] + minimized[index + 1:])


def test_deterministic():
    def reproduces(candidate):
        return sum(isinstance(i, AluImm) for i in candidate) >= 2

    program = _program(10) + [AluImm("r0", "r0", 1, "add") for _ in range(6)]
    a = shrink(program, reproduces)
    b = shrink(program, reproduces)
    assert [repr(i) for i in a] == [repr(i) for i in b]
    assert len(a) == 2


def test_non_reproducing_input_returned_unchanged():
    program = _program(10)
    assert shrink(program, lambda candidate: False) == program


def test_report_shape():
    def reproduces(candidate):
        return any(isinstance(i, MovImm) and i.value == 2 for i in candidate)

    report = shrink_report(_program(20), reproduces)
    assert report["count"] == 1
    assert report["original_count"] == 21
    assert report["instructions"] == [repr(MovImm("r2", 2))]
