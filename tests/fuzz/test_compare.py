"""The shared architectural-state comparator (Rdpru exclusion rule)."""

from repro.cpu.isa import Alu, Halt, Load, MovImm, Rdpru
from repro.fuzz.compare import (
    compare_architectural,
    rdpru_destinations,
    written_registers,
)

PROGRAM = [
    MovImm("r0", 5),
    Rdpru("t0"),
    Alu("r1", "r0", "r0", "add"),
    Load("r2", base="r0"),
    Halt(),
]


def test_written_and_rdpru_registers():
    assert written_registers(PROGRAM) == {"r0", "t0", "r1", "r2"}
    assert rdpru_destinations(PROGRAM) == {"t0"}


def test_rdpru_destinations_excluded_centrally():
    # t0 differs wildly (timing), everything else matches: no divergence.
    a = {"r0": 5, "r1": 10, "r2": 7, "t0": 123456}
    b = {"r0": 5, "r1": 10, "r2": 7, "t0": 42}
    assert compare_architectural(PROGRAM, a, b) is None


def test_real_register_difference_reported():
    a = {"r0": 5, "r1": 10, "r2": 7, "t0": 1}
    b = {"r0": 5, "r1": 11, "r2": 7, "t0": 1}
    divergence = compare_architectural(PROGRAM, a, b)
    assert divergence is not None
    assert divergence.registers == {"r1": (10, 11)}
    assert "r1" in divergence.describe()


def test_memory_difference_reported():
    regs = {"r0": 5, "r1": 10, "r2": 7}
    divergence = compare_architectural(
        PROGRAM, regs, dict(regs), mem_a=b"\x00" * 16, mem_b=b"\x00" * 15 + b"\x01"
    )
    assert divergence is not None
    assert divergence.memory_diff_bytes == 1
    assert divergence.memory_offsets == (15,)


def test_outcome_difference_reported():
    regs = {"r0": 5, "r1": 10, "r2": 7}
    divergence = compare_architectural(
        PROGRAM, regs, dict(regs), outcome_a="ok", outcome_b="fault:oops"
    )
    assert divergence is not None
    assert divergence.outcomes == ("ok", "fault:oops")


def test_identical_failures_are_not_divergent():
    divergence = compare_architectural(
        PROGRAM, {}, {}, outcome_a="limit", outcome_b="limit"
    )
    assert divergence is None


def test_tracked_override_narrows_comparison():
    a = {"r0": 5, "r1": 10}
    b = {"r0": 5, "r1": 999}
    assert compare_architectural(PROGRAM, a, b, tracked=["r0"]) is None
