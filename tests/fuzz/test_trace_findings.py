"""Replaying shrunk reproducers with tracing (``--trace-findings``)."""

import pytest

from repro.cpu.isa import (
    Halt,
    Jz,
    Label,
    Load,
    MovImm,
    Store,
    instruction_from_repr,
    instructions_from_reprs,
)
from repro.errors import InvalidInstruction
from repro.fuzz.cli import trace_shrunk_findings
from repro.fuzz.findings import Finding
from repro.telemetry.sinks import read_trace


class TestInstructionFromRepr:
    def test_round_trips_every_shape(self):
        program = [
            MovImm("p", 0x1000),
            Store(base="p", src="p", offset=8, width=4),
            Load("x", base="p"),
            Jz("x", "end"),
            Label("end"),
            Halt(),
        ]
        rebuilt = instructions_from_reprs([repr(i) for i in program])
        assert rebuilt == program

    def test_rejects_non_instruction_expressions(self):
        with pytest.raises(InvalidInstruction):
            instruction_from_repr("[1, 2, 3]")

    def test_rejects_arbitrary_code(self):
        with pytest.raises(InvalidInstruction):
            instruction_from_repr("__import__('os')")

    def test_rejects_garbage(self):
        with pytest.raises(InvalidInstruction):
            instruction_from_repr("Frobnicate(x=1)")


class TestTraceShrunkFindings:
    def _finding(self, shrunk):
        return Finding(
            kind="architectural-divergence",
            generator="fuzz-v1",
            seed=5,
            blocks=12,
            cpu_model="ryzen9-5900x",
            mitigation="none",
            task=3,
            shrunk=shrunk,
        )

    def test_traces_only_shrunk_findings(self, tmp_path):
        program = [MovImm("p", 0x1000), Halt()]
        shrunk = {"count": 2, "original_count": 9,
                  "instructions": [repr(i) for i in program]}
        with_repro = self._finding(shrunk)
        without = self._finding(None)
        out = tmp_path / "findings.jsonl"
        traced = trace_shrunk_findings([with_repro, without], out)
        assert traced == 1
        assert with_repro.trace == "traces/task0003-none.trace.jsonl"
        assert without.trace is None
        header, events = read_trace(tmp_path / with_repro.trace)
        assert header["target"] == "finding:task3"
        assert any(e["kind"] == "dispatch" for e in events)

    def test_trace_field_round_trips(self):
        finding = self._finding(None)
        finding.trace = "traces/x.jsonl"
        finding.metrics = {"counters": {"fuzz.dual_runs": 1}}
        rebuilt = Finding.from_dict(finding.to_dict())
        assert rebuilt.trace == finding.trace
        assert rebuilt.metrics == finding.metrics

    def test_absent_fields_stay_out_of_the_artifact(self):
        data = self._finding(None).to_dict()
        assert "trace" not in data and "metrics" not in data
