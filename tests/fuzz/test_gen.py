"""Program-generator properties: determinism, well-formedness, coverage."""

import pytest

from repro.cpu.isa import Halt, Jz, Label, Load, Rdpru, Store
from repro.errors import ConfigError
from repro.fuzz.gen import BUF_BYTES, GENERATORS, build_program


@pytest.mark.parametrize("generator", sorted(GENERATORS))
class TestEveryGenerator:
    def test_deterministic(self, generator):
        a = build_program(generator, 1234, 20)
        b = build_program(generator, 1234, 20)
        assert [repr(i) for i in a] == [repr(i) for i in b]

    def test_seed_changes_program(self, generator):
        a = build_program(generator, 1, 20)
        b = build_program(generator, 2, 20)
        assert [repr(i) for i in a] != [repr(i) for i in b]

    def test_halts_and_branches_forward(self, generator):
        for seed in range(10):
            instructions = build_program(generator, seed, 25)
            assert isinstance(instructions[-1], Halt)
            labels = {
                instruction.name: index
                for index, instruction in enumerate(instructions)
                if isinstance(instruction, Label)
            }
            for index, instruction in enumerate(instructions):
                if isinstance(instruction, Jz):
                    assert labels[instruction.label] > index, "backward branch"


def test_unknown_generator_rejected():
    with pytest.raises(ConfigError):
        build_program("nope-v9", 1, 10)


def test_fuzz_templates_cover_speculation_shapes():
    """Across a handful of seeds the fuzz generator must emit racing
    store/load pairs, branches and rdpru reads — the shapes the
    harness and comparator exist for."""
    kinds = set()
    for seed in range(20):
        for instruction in build_program("fuzz-v1", seed, 30):
            kinds.add(type(instruction).__name__)
    assert {"Store", "Load", "Jz", "Rdpru", "Mfence"} <= kinds


def test_oracle_program_only_scratch_rdpru_free_transmits():
    """Oracle programs keep Rdpru out entirely (timing is observed by the
    oracle itself) and keep every load in-bounds."""
    for seed in range(20):
        instructions = build_program("oracle-v1", seed, 25)
        assert not any(isinstance(i, Rdpru) for i in instructions)
        for instruction in instructions:
            if isinstance(instruction, (Load, Store)):
                assert 0 <= instruction.offset <= BUF_BYTES - 8
