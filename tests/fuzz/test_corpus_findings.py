"""Persistent corpus + findings JSONL: round-trips, schema guards."""

import json

import pytest

from repro.errors import ArtifactError
from repro.fuzz.corpus import (
    REGRESSION_ENTRIES,
    Corpus,
    CorpusEntry,
    replay_order,
)
from repro.fuzz.findings import (
    Finding,
    canonical_line,
    read_findings,
    write_findings,
)
from repro.runtime.quarantine import QUARANTINE_DIR


class TestCorpus:
    def test_entry_round_trip(self):
        entry = CorpusEntry("fuzz-v1", 99, 17, label="x", origin="campaign")
        again = CorpusEntry.from_dict(entry.to_dict())
        assert again == entry

    def test_key_is_content_addressed_and_label_free(self):
        a = CorpusEntry("fuzz-v1", 99, 17, label="one")
        b = CorpusEntry("fuzz-v1", 99, 17, label="two", origin="regression")
        c = CorpusEntry("fuzz-v1", 100, 17)
        assert a.key == b.key
        assert a.key != c.key

    def test_unknown_generator_rejected(self):
        with pytest.raises(Exception):
            CorpusEntry("nope-v9", 1, 10)

    def test_schema_mismatch_rejected(self):
        data = CorpusEntry("fuzz-v1", 1, 10).to_dict()
        data["schema"] = 99
        with pytest.raises(ArtifactError):
            CorpusEntry.from_dict(data)

    def test_disk_round_trip_and_dedup(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        entry = CorpusEntry("oracle-v1", 5, 16, label="leak")
        corpus.add(entry)
        corpus.add(entry)  # idempotent
        assert len(corpus) == 1
        assert corpus.entries() == [entry]

    def test_corrupt_files_skipped_and_quarantined(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(CorpusEntry("fuzz-v1", 1, 10))
        junk = tmp_path / "corpus" / "zz"
        junk.mkdir(parents=True)
        (junk / "zzzz.json").write_text("{not json", encoding="utf-8")
        assert len(corpus.entries()) == 1
        # The corrupt file is preserved under quarantine/ with a reason
        # sidecar and counted — and no longer shadows the healthy corpus.
        assert corpus.quarantined == 1
        saved = corpus.root / QUARANTINE_DIR / "zzzz.json"
        assert saved.read_text() == "{not json"
        assert saved.with_name(saved.name + ".reason").exists()
        assert len(corpus) == 1
        assert len(corpus.entries()) == 1  # idempotent on a clean corpus

    def test_replay_order_regressions_first(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        fresh = CorpusEntry("fuzz-v1", 424242, 12)
        corpus.add(fresh)
        order = replay_order(corpus)
        assert order[: len(REGRESSION_ENTRIES)] == list(REGRESSION_ENTRIES)
        assert fresh in order[len(REGRESSION_ENTRIES):]
        # Built-ins replay even without a disk corpus.
        assert replay_order(None) == list(REGRESSION_ENTRIES)

    def test_regression_entries_match_historical_cases(self):
        assert [(e.seed, e.blocks) for e in REGRESSION_ENTRIES[:3]] == [
            (42363, 20),
            (200104, 19),
            (200006, 26),
        ]
        assert all(e.origin == "regression" for e in REGRESSION_ENTRIES)


def _finding(**overrides):
    data = dict(
        kind="leak",
        generator="oracle-v1",
        seed=5,
        blocks=16,
        cpu_model="ryzen9-5900x",
        mitigation="none",
        task=9,
        detail={"cached_lines": {"differing": 2, "offsets": [0, 64]}},
    )
    data.update(overrides)
    return Finding(**data)


class TestFindings:
    def test_round_trip(self, tmp_path):
        findings = [
            _finding(),
            _finding(
                kind="architectural-divergence",
                mitigation="ssbd",
                task=12,
                shrunk={"count": 3, "original_count": 80, "instructions": []},
            ),
        ]
        path = write_findings(tmp_path / "f.jsonl", findings)
        assert read_findings(path) == findings

    def test_canonical_line_is_stable_json(self):
        line = canonical_line(_finding())
        assert line == canonical_line(_finding())
        assert json.loads(line)["kind"] == "leak"
        assert ": " not in line  # canonical separators

    def test_unknown_kind_rejected(self):
        with pytest.raises(ArtifactError):
            _finding(kind="vibes")

    def test_schema_guard(self, tmp_path):
        path = tmp_path / "f.jsonl"
        data = _finding().to_dict()
        data["schema"] = 99
        path.write_text(json.dumps(data) + "\n", encoding="utf-8")
        with pytest.raises(ArtifactError):
            read_findings(path)

    def test_damaged_line_rejected(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text(canonical_line(_finding()) + "\n{oops\n", encoding="utf-8")
        with pytest.raises(ArtifactError):
            read_findings(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            read_findings(tmp_path / "absent.jsonl")
