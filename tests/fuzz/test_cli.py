"""The repro-fuzz campaign engine: determinism, replay, exit policy."""

import pytest

from repro.fuzz.cli import (
    build_tasks,
    derive_case,
    main,
    regressions,
    run_fuzz_campaign,
)
from repro.fuzz.corpus import REGRESSION_ENTRIES, Corpus, replay_order
from repro.fuzz.findings import read_findings

BUDGET = 4  # 4 generated cases x (differential + oracle) + corpus replays


def _campaign(tmp_path, tag, **kwargs):
    options = dict(
        budget=BUDGET,
        seed=1,
        corpus_dir=tmp_path / f"corpus-{tag}",
        shrink=False,
    )
    options.update(kwargs)
    return run_fuzz_campaign(**options)


def test_derive_case_deterministic_and_index_dependent():
    assert derive_case(1, 0) == derive_case(1, 0)
    assert derive_case(1, 0) != derive_case(1, 1)
    assert derive_case(1, 0) != derive_case(2, 0)


def test_tasks_replay_corpus_first():
    tasks = build_tasks(
        budget=2, seed=1, mitigations=["none"], model_name=None,
        replay=replay_order(None),
    )
    assert [t["origin"] for t in tasks[: len(REGRESSION_ENTRIES)]] == (
        ["corpus"] * len(REGRESSION_ENTRIES)
    )
    generated = tasks[len(REGRESSION_ENTRIES):]
    assert [t["check"] for t in generated] == [
        "differential", "oracle", "differential", "oracle",
    ]
    assert [t["task"] for t in tasks] == list(range(len(tasks)))


def test_serial_and_parallel_campaigns_identical(tmp_path):
    serial = _campaign(tmp_path, "serial", jobs=1)
    parallel = _campaign(tmp_path, "parallel", jobs=4)
    assert serial == parallel
    assert [f.kind for f in serial] == ["leak"] * len(serial)
    assert len(serial) >= 1, "expected the unmitigated pipeline to leak"


def test_campaign_findings_only_from_unmitigated_leaks(tmp_path):
    findings = _campaign(tmp_path, "clean")
    assert regressions(findings) == []
    assert all(f.mitigation == "none" for f in findings)


def test_injected_bug_found_shrunk_and_remembered(tmp_path):
    corpus_dir = tmp_path / "corpus-inject"
    findings = run_fuzz_campaign(
        budget=2, seed=1, corpus_dir=corpus_dir,
        mitigations=["none"], inject="skip-register-repair",
    )
    divergences = [f for f in findings if f.kind == "architectural-divergence"]
    assert divergences, "campaign missed the injected pipeline bug"
    assert regressions(findings)
    shrunk = [f for f in divergences if f.shrunk]
    assert shrunk, "divergences were not minimized"
    assert all(
        f.shrunk["count"] <= f.shrunk["original_count"] for f in shrunk
    )
    # Generated reproducers were added to the corpus for future replays.
    remembered = Corpus(corpus_dir).entries()
    generated = [f for f in divergences if f.origin == "generated"]
    assert {(f.seed, f.blocks) for f in generated} <= {
        (e.seed, e.blocks) for e in remembered
    }


def test_unknown_mitigation_raises(tmp_path):
    with pytest.raises(Exception):
        _campaign(tmp_path, "bad", mitigations=["prayer"])


class TestMain:
    def test_clean_run_exit_zero_and_byte_identity(self, tmp_path, capsys):
        out_a = tmp_path / "a.jsonl"
        out_b = tmp_path / "b.jsonl"
        code_a = main([
            "--budget", "2", "--seed", "1", "--jobs", "1", "--no-shrink",
            "--out", str(out_a), "--corpus-dir", str(tmp_path / "ca"),
        ])
        code_b = main([
            "--budget", "2", "--seed", "1", "--jobs", "3", "--no-shrink",
            "--out", str(out_b), "--corpus-dir", str(tmp_path / "cb"),
        ])
        assert code_a == code_b == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        assert read_findings(out_a) == read_findings(out_b)
        assert "clean" in capsys.readouterr().out

    def test_injected_bug_fails_the_run(self, tmp_path, capsys):
        code = main([
            "--budget", "1", "--seed", "1", "--mitigation", "none",
            "--inject", "skip-register-repair", "--no-shrink",
            "--out", str(tmp_path / "f.jsonl"), "--no-corpus",
        ])
        assert code == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_bad_mitigation_is_usage_error(self, tmp_path):
        code = main([
            "--budget", "0", "--mitigation", "prayer",
            "--out", str(tmp_path / "f.jsonl"), "--no-corpus",
        ])
        assert code == 2
