"""Dual-execution harness: clean baselines, mitigations, chaos hooks.

The chaos tests are the harness's reason to exist: arm a pipeline
fault-injection hook (breaking squash repair), and the differential
check MUST catch the resulting architectural divergence — and the
shrinker MUST reduce it to a tiny reproducer.
"""

import pytest

from repro.cpu import pipeline as pipeline_mod
from repro.errors import ConfigError
from repro.fuzz.harness import (
    MITIGATIONS,
    chaos,
    check_case,
    execute_program,
    run_dual,
)
from repro.fuzz.gen import build_program
from repro.fuzz.shrink import shrink
from repro.mitigations.fences import count_fences

# Pinned: under "skip-register-repair" this case diverges and shrinks
# small (see test_chaos_divergence_is_caught_and_shrinks).
CHAOS_SEED, CHAOS_BLOCKS = 1, 12


@pytest.mark.parametrize("mitigation", MITIGATIONS)
def test_clean_pipeline_matches_reference(mitigation):
    for seed in (3, 11, 77):
        report = check_case("fuzz-v1", seed, 18, mitigation=mitigation)
        assert report.divergence is None, (
            f"{mitigation}: {report.divergence.describe()}"
        )


def test_fence_mitigation_transforms_program():
    instructions = build_program("fuzz-v1", 9, 20)
    execution = execute_program(instructions, seed=9, mitigation="fence")
    assert execution.status == "ok"
    # The transform itself is covered by the mitigations unit tests; here
    # just pin that fences were actually requested by the generator's input.
    assert count_fences(instructions) >= 0


def test_unknown_mitigation_rejected():
    with pytest.raises(ConfigError):
        check_case("fuzz-v1", 1, 10, mitigation="prayer")


def test_chaos_rejects_unknown_hooks_and_restores_state():
    with pytest.raises(ConfigError):
        with chaos("skip-everything"):
            pass
    assert not pipeline_mod.CHAOS_HOOKS
    with chaos("skip-register-repair"):
        assert "skip-register-repair" in pipeline_mod.CHAOS_HOOKS
    assert "skip-register-repair" not in pipeline_mod.CHAOS_HOOKS


def test_chaos_divergence_is_caught_and_shrinks():
    """Injected squash-repair bug: caught by the harness, minimized to a
    handful of instructions by the shrinker (the ISSUE's self-test)."""
    with chaos("skip-register-repair"):
        report = check_case("fuzz-v1", CHAOS_SEED, CHAOS_BLOCKS)
        assert report.divergence is not None, "injected bug went unnoticed"

        def reproduces(candidate):
            return (
                run_dual(candidate, seed=CHAOS_SEED).divergence is not None
            )

        minimized = shrink(report.instructions, reproduces)
        assert reproduces(minimized)
        assert len(minimized) <= 10, [repr(i) for i in minimized]
    # Outside the chaos block the same case is clean again.
    assert check_case("fuzz-v1", CHAOS_SEED, CHAOS_BLOCKS).divergence is None


def test_chaos_store_squash_hook_is_caught():
    """The second hook (wrong-path stores surviving squash) is also
    detected — pinned seed from a scan, plus clean without chaos."""
    with chaos("skip-store-squash"):
        report = check_case("fuzz-v1", 16, 24)
        assert report.divergence is not None, "injected bug went unnoticed"
    assert check_case("fuzz-v1", 16, 24).divergence is None
