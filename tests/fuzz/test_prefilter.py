"""The --static-prefilter: skip dynamics only where the scanner proves it."""

from repro.fuzz.cli import (
    build_tasks,
    main,
    prefilter_tasks,
    run_fuzz_campaign,
)
from repro.fuzz.corpus import replay_order


def _task(**overrides):
    task = {
        "task": 0, "check": "oracle", "generator": "oracle-v1",
        "seed": 1, "blocks": 2, "origin": "generated", "label": "g",
        "mitigations": ["ssbd"], "cpu_model": "", "inject": "",
        "shrink": False, "metrics": False,
    }
    task.update(overrides)
    return task


class TestPrefilterTasks:
    def test_clean_generated_oracle_task_is_skipped(self):
        # oracle-v1 seed 1 blocks 2 scans clean under ssbd (and the skip
        # requires clean under *every* task mitigation).
        kept, scanned, skipped = prefilter_tasks([_task()])
        assert (kept, scanned, skipped) == ([], 1, 1)

    def test_flagged_task_is_kept(self):
        # oracle-v1 seed 3 blocks 2 is flagged under "none": a skip
        # requires a clean scan under *every* task mitigation.
        task = _task(seed=3, mitigations=["none", "ssbd"])
        kept, scanned, skipped = prefilter_tasks([task])
        assert kept == [task] and scanned == 1 and skipped == 0

    def test_corpus_and_differential_tasks_are_never_scanned(self):
        corpus = _task(origin="corpus")
        differential = _task(check="differential")
        kept, scanned, skipped = prefilter_tasks([corpus, differential])
        assert kept == [corpus, differential]
        assert scanned == 0 and skipped == 0

    def test_campaign_task_lists_filter_deterministically(self):
        tasks = build_tasks(
            budget=3, seed=1, mitigations=["ssbd"], model_name=None,
            replay=replay_order(None),
        )
        once = prefilter_tasks(tasks)
        twice = prefilter_tasks(tasks)
        assert once == twice
        kept, scanned, skipped = once
        assert scanned == 3                  # one oracle task per budget index
        assert skipped == 3                  # all ssbd-clean (covered loads)
        assert all(
            task["check"] == "differential" or task["origin"] == "corpus"
            for task in kept
        )


class TestCampaignIntegration:
    def test_prefilter_never_changes_the_findings(self, tmp_path):
        options = dict(budget=4, seed=1, shrink=False)
        plain = run_fuzz_campaign(
            corpus_dir=tmp_path / "ca", **options
        )
        filtered = run_fuzz_campaign(
            corpus_dir=tmp_path / "cb", static_prefilter=True, **options
        )
        assert list(plain) == list(filtered)
        assert plain.prefilter_scanned == 0
        assert filtered.prefilter_scanned == 4

    def test_ssbd_campaign_skips_everything_and_stays_clean(self, tmp_path):
        result = run_fuzz_campaign(
            budget=3, seed=1, mitigations=["ssbd"], shrink=False,
            corpus_dir=tmp_path / "c", static_prefilter=True,
        )
        assert result.prefilter_scanned == 3
        assert result.prefilter_skipped == 3
        assert list(result) == []

    def test_cli_flag_reports_the_skip_counters(self, tmp_path, capsys):
        code = main([
            "--budget", "2", "--seed", "1", "--mitigation", "ssbd",
            "--no-shrink", "--static-prefilter", "--no-corpus",
            "--out", str(tmp_path / "f.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "static prefilter: scanned 2" in out
        assert "proven gadget-free" in out
