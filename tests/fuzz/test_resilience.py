"""Fuzz campaign resilience: crash survival, checkpoint/resume, quarantine.

Faults come from the shared chaos injector (:mod:`repro.runtime.chaos`);
chaos keys are campaign task indices (``crash@3`` kills the worker
running task 3).  Campaigns here are minimal — one generated program,
one mitigation, no shrinking, no on-disk corpus — so every test is a
real multi-process campaign that still runs in seconds.
"""

import json

import pytest

from repro.errors import CampaignInterrupted
from repro.fuzz.cli import checkpoint_path, main, run_fuzz_campaign
from repro.runtime.quarantine import QUARANTINE_DIR

# 8 built-in regression replays + 1 generated case x (differential +
# oracle) = 10 tasks, ids 0..9; replays come first.


def _campaign(**kwargs):
    options = dict(
        budget=1, seed=1, mitigations=["none"], shrink=False, corpus_dir=None
    )
    options.update(kwargs)
    return run_fuzz_campaign(**options)


class TestCrashIsolation:
    def test_chaos_crash_converges_to_identical_findings(self):
        baseline = _campaign(jobs=2)
        chaotic = _campaign(jobs=2, chaos="crash@3", retries=2)
        assert list(chaotic) == list(baseline)
        assert chaotic.retried >= 1
        assert chaotic.failures == []

    def test_crash_without_retries_is_structured_failure(self):
        campaign = _campaign(jobs=2, chaos="crash@3", retries=0)
        (failure,) = campaign.failures
        assert failure.task == 3 and failure.kind == "crash"


class TestCheckpointResume:
    def test_interrupt_writes_checkpoint_then_resume_converges(self, tmp_path):
        baseline = _campaign(jobs=2)
        ckpt = checkpoint_path(tmp_path / "f.jsonl")
        with pytest.raises(CampaignInterrupted) as excinfo:
            _campaign(jobs=2, checkpoint=ckpt, chaos="interrupt@0")
        assert excinfo.value.checkpoint == ckpt
        data = json.loads(ckpt.read_text())
        assert data["completed"], "interrupt left an empty checkpoint"
        resumed = _campaign(jobs=2, checkpoint=ckpt, resume=True)
        assert resumed.resumed >= 1
        assert list(resumed) == list(baseline)
        assert not ckpt.exists(), "checkpoint must be deleted on completion"

    def test_corrupt_checkpoint_is_quarantined_not_trusted(self, tmp_path):
        baseline = _campaign()
        ckpt = checkpoint_path(tmp_path / "f.jsonl")
        ckpt.write_text('{"schema": 1, "completed"')  # truncated mid-write
        campaign = _campaign(checkpoint=ckpt, resume=True)
        assert campaign.quarantined == 1
        assert campaign.resumed == 0
        assert list(campaign) == list(baseline)
        saved = tmp_path / QUARANTINE_DIR / ckpt.name
        assert saved.exists() and saved.with_name(saved.name + ".reason").exists()

    def test_stale_checkpoint_for_other_campaign_is_ignored(self, tmp_path):
        ckpt = checkpoint_path(tmp_path / "f.jsonl")
        ckpt.write_text(json.dumps(
            {"schema": 1, "fingerprint": "0" * 64, "completed": {"0": []}}
        ))
        campaign = _campaign(checkpoint=ckpt, resume=True)
        assert campaign.resumed == 0
        assert campaign.quarantined == 0


class TestMainExitCodes:
    def _args(self, out, *extra):
        return [
            "--budget", "1", "--seed", "1", "--mitigation", "none",
            "--no-shrink", "--no-corpus", "--jobs", "2",
            "--out", str(out), *extra,
        ]

    def test_interrupt_exits_3_then_resume_exits_0(self, tmp_path, capsys):
        clean = tmp_path / "clean.jsonl"
        assert main(self._args(clean)) == 0
        out = tmp_path / "f.jsonl"
        code = main(self._args(out, "--chaos", "interrupt@0"))
        assert code == 3
        assert checkpoint_path(out).exists()
        assert "--resume" in capsys.readouterr().err
        code = main(self._args(out, "--resume"))
        assert code == 0
        assert not checkpoint_path(out).exists()
        assert out.read_bytes() == clean.read_bytes()

    def test_exhausted_task_exits_1(self, tmp_path, capsys):
        code = main(self._args(
            tmp_path / "f.jsonl", "--chaos", "crash@0", "--retries", "0"
        ))
        assert code == 1
        assert "FAILED task 0" in capsys.readouterr().out

    def test_bad_chaos_spec_is_usage_error(self, tmp_path):
        assert main(self._args(tmp_path / "f.jsonl", "--chaos", "nuke@1")) == 2
