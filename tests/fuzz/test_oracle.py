"""Two-fill leakage oracle: finds leaks, respects mitigations, determinism."""

import pytest

from repro.fuzz.cli import derive_case
from repro.fuzz.oracle import leak_check, observation_diff, secret_fills

# Pinned: this oracle case leaks through the unmitigated pipeline (a
# racing load bypasses a covering store on first encounter and the
# transmit gadget caches a secret-dependent line).
LEAK_SEED, LEAK_BLOCKS = 5, 16


def test_secret_fills_distinct_and_deterministic():
    a1, b1 = secret_fills(7)
    a2, b2 = secret_fills(7)
    assert a1 == a2 and b1 == b2
    assert a1 != b1
    assert secret_fills(8)[0] != a1


def test_unmitigated_pipeline_leaks():
    report = leak_check("oracle-v1", LEAK_SEED, LEAK_BLOCKS, mitigation="none")
    assert report.finding_kind == "leak"
    assert report.arch_divergence is None, "oracle invariant violated"
    assert report.observation, "leak finding without observation diff"


@pytest.mark.parametrize("mitigation", ["ssbd", "fence"])
def test_mitigations_stop_the_leaks(mitigation):
    """Across a small sweep, no oracle case may leak once mitigated —
    the property `make fuzz-smoke` gates on."""
    for index in range(6):
        seed, blocks = derive_case(1, index)
        report = leak_check("oracle-v1", seed, blocks, mitigation=mitigation)
        assert report.finding_kind is None, (
            f"seed {seed}: {report.finding_kind} under {mitigation}: "
            f"{report.to_detail()}"
        )


def test_architectural_results_are_secret_independent():
    """The oracle's precondition, checked over a sweep: two fills never
    change tracked architectural results (else `leak` is undefined)."""
    for index in range(8):
        seed, blocks = derive_case(2, index)
        for mitigation in ("none", "ssbd"):
            report = leak_check("oracle-v1", seed, blocks, mitigation=mitigation)
            assert report.arch_divergence is None, (
                f"seed {seed} / {mitigation}: "
                f"{report.arch_divergence.describe()}"
            )


def test_oracle_is_deterministic():
    first = leak_check("oracle-v1", LEAK_SEED, LEAK_BLOCKS)
    second = leak_check("oracle-v1", LEAK_SEED, LEAK_BLOCKS)
    assert first.finding_kind == second.finding_kind
    assert first.to_detail() == second.to_detail()


def test_observation_diff_shape():
    report = leak_check("oracle-v1", LEAK_SEED, LEAK_BLOCKS)
    diff = report.observation
    # Only JSON-serializable summaries, never raw objects.
    import json

    json.dumps(diff)
    if "cached_lines" in diff:
        assert diff["cached_lines"]["differing"] >= 1


def test_identical_observations_diff_empty():
    report = leak_check("oracle-v1", LEAK_SEED, LEAK_BLOCKS)
    # Reflexive check via the module function on equal observations.
    _, obs = _observe_once()
    assert observation_diff(obs, obs) == {}


def _observe_once():
    from repro.fuzz.gen import build_program
    from repro.fuzz.oracle import observe_program

    instructions = build_program("oracle-v1", LEAK_SEED, LEAK_BLOCKS)
    return observe_program(instructions, seed=LEAK_SEED)
