"""The interference model: determinism, quiet no-op, machine hooks."""

import pytest

from repro.cpu.isa import Halt, Load, MovImm, Program
from repro.cpu.machine import Machine
from repro.errors import ReproError
from repro.interference import InterferenceModel, get_profile


def _victim(machine):
    process = machine.kernel.create_process("victim")
    buf = machine.kernel.map_anonymous(process, pages=1)
    program = machine.load_program(
        process, Program([MovImm("p", buf), Load("x", base="p"), Halt()],
                         name="victim")
    )
    return process, program


def _campaign(seed, profile_name, runs=40):
    """Run a small seeded campaign; return (cycle counter, model tallies)."""
    machine = Machine(seed=seed)
    model = InterferenceModel(get_profile(profile_name, seed=seed))
    model.attach(machine)
    process, program = _victim(machine)
    timer_readings = []
    for _ in range(runs):
        result = machine.run(process, program)
        timer_readings.append(model.timer(result.cycles))
    return (
        machine.core.thread(0).cycles,
        (model.preemptions, model.corunner_runs, model.pmc_perturbations),
        timer_readings,
    )


class TestAttachment:
    def test_attach_returns_self_and_installs(self):
        machine = Machine(seed=1)
        model = InterferenceModel(get_profile("desktop"))
        assert model.attach(machine) is model
        assert machine.interference is model

    def test_double_attach_rejected(self):
        machine = Machine(seed=1)
        model = InterferenceModel(get_profile("desktop")).attach(machine)
        with pytest.raises(ReproError, match="already"):
            InterferenceModel(get_profile("quiet")).attach(machine)
        with pytest.raises(ReproError, match="already"):
            model.attach(Machine(seed=2))

    def test_detach_frees_the_machine(self):
        machine = Machine(seed=1)
        model = InterferenceModel(get_profile("desktop")).attach(machine)
        model.detach()
        assert machine.interference is None
        InterferenceModel(get_profile("quiet")).attach(machine)


class TestQuietNoOp:
    def test_no_processes_no_rng_no_cycles(self):
        bare = Machine(seed=3)
        attached = Machine(seed=3)
        model = InterferenceModel(get_profile("quiet")).attach(attached)
        state_before = model.rng.getstate()
        for machine in (bare, attached):
            process, program = _victim(machine)
            for _ in range(10):
                machine.run(process, program)
        assert bare.core.thread(0).cycles == attached.core.thread(0).cycles
        assert model.rng.getstate() == state_before
        assert (model.preemptions, model.corunner_runs,
                model.pmc_perturbations) == (0, 0, 0)

    def test_quiet_timer_is_identity(self):
        model = InterferenceModel(get_profile("quiet"))
        assert [model.timer(c) for c in (0, 1, 12345)] == [0, 1, 12345]


class TestDeterminism:
    @pytest.mark.parametrize("preset", ["desktop", "adversarial"])
    def test_same_seed_same_schedule(self, preset):
        assert _campaign(11, preset) == _campaign(11, preset)

    def test_different_seed_different_schedule(self):
        # Not a tautology: 40 adversarial runs draw enough events that
        # two seeds colliding on every draw would indicate a wiring bug.
        assert _campaign(11, "adversarial") != _campaign(12, "adversarial")


class TestDisturbances:
    def test_adversarial_campaign_actually_disturbs(self):
        _, (preemptions, corunner_runs, _), _ = _campaign(7, "adversarial")
        assert preemptions > 0
        assert corunner_runs > 0

    def test_interference_inflates_the_campaign_cycles(self):
        quiet_cycles, _, _ = _campaign(7, "quiet")
        loud_cycles, _, _ = _campaign(7, "adversarial")
        assert loud_cycles > quiet_cycles


class TestTimer:
    def test_zero_cycles_stay_zero(self):
        model = InterferenceModel(get_profile("adversarial"))
        assert model.timer(0) == 0

    def test_readings_bounded_by_drift_plus_jitter(self):
        profile = get_profile("adversarial")
        model = InterferenceModel(profile)
        low = 1000 * (1.0 - profile.timer_jitter) - 1
        high = 1000 * (1.0 + profile.timer_drift + profile.timer_jitter) + 1
        readings = [model.timer(1000) for _ in range(500)]
        assert all(low <= reading <= high for reading in readings)
        assert len(set(readings)) > 1  # jitter is actually live
