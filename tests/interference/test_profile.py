"""Interference profiles: validation, presets, lookup."""

import pytest

from repro.interference import (
    PRESET_ORDER,
    PRESETS,
    InterferenceProfile,
    get_profile,
)


class TestValidation:
    @pytest.mark.parametrize("field", ["corunner_rate", "preemption_rate", "pmc_noise"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ValueError, match="probability"):
            InterferenceProfile(**{field: value})

    @pytest.mark.parametrize("field", ["timer_drift", "timer_jitter"])
    def test_timer_terms_bounded(self, field):
        with pytest.raises(ValueError, match=r"\[0, 0.5\]"):
            InterferenceProfile(**{field: 0.6})

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            InterferenceProfile(corunner_ops=-1)

    def test_drift_period_positive(self):
        with pytest.raises(ValueError, match="drift_period"):
            InterferenceProfile(drift_period=0)


class TestPresets:
    def test_quiet_is_quiet(self):
        assert PRESETS["quiet"].is_quiet

    @pytest.mark.parametrize("name", [n for n in PRESET_ORDER if n != "quiet"])
    def test_loud_presets_are_not_quiet(self, name):
        assert not PRESETS[name].is_quiet

    def test_order_covers_every_preset_mildest_first(self):
        assert set(PRESET_ORDER) == set(PRESETS)
        rates = [PRESETS[name].preemption_rate for name in PRESET_ORDER]
        assert rates == sorted(rates)

    def test_round_trips_through_dict(self):
        profile = PRESETS["adversarial"]
        assert InterferenceProfile(**profile.to_dict()) == profile


class TestLookup:
    def test_get_profile_by_name(self):
        assert get_profile("desktop") is PRESETS["desktop"]

    def test_reseeding_copies(self):
        profile = get_profile("desktop", seed=99)
        assert profile.seed == 99
        assert PRESETS["desktop"].seed == 0  # preset untouched

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown interference preset"):
            get_profile("hurricane")
