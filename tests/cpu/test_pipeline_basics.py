"""Pipeline tests: architectural semantics (values, ordering, faults)."""

import pytest

from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    Imul,
    ImulImm,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Program,
    Rdpru,
    Store,
)
from repro.cpu.machine import Machine
from repro.errors import SegmentationFault


@pytest.fixture()
def machine():
    return Machine(seed=3)


@pytest.fixture()
def process(machine):
    return machine.kernel.create_process("proc")


def run(machine, process, instructions, regs=None):
    program = machine.load_program(process, Program(instructions, name="test"))
    return machine.run(process, program, regs)


class TestArithmetic:
    def test_mov_imm(self, machine, process):
        result = run(machine, process, [MovImm("a", 42), Halt()])
        assert result.regs["a"] == 42

    def test_mov_reg(self, machine, process):
        result = run(machine, process, [MovImm("a", 7), Mov("b", "a"), Halt()])
        assert result.regs["b"] == 7

    def test_alu_ops(self, machine, process):
        result = run(
            machine,
            process,
            [
                MovImm("a", 12),
                MovImm("b", 10),
                Alu("sum", "a", "b", "add"),
                Alu("diff", "a", "b", "sub"),
                Alu("x", "a", "b", "xor"),
                Alu("n", "a", "b", "and"),
                Alu("o", "a", "b", "or"),
                Halt(),
            ],
        )
        assert result.regs["sum"] == 22
        assert result.regs["diff"] == 2
        assert result.regs["x"] == 12 ^ 10
        assert result.regs["n"] == 12 & 10
        assert result.regs["o"] == 12 | 10

    def test_alu_imm(self, machine, process):
        result = run(machine, process, [MovImm("a", 5), AluImm("a", "a", 3), Halt()])
        assert result.regs["a"] == 8

    def test_imul(self, machine, process):
        result = run(
            machine,
            process,
            [MovImm("a", 6), MovImm("b", 7), Imul("p", "a", "b"), Halt()],
        )
        assert result.regs["p"] == 42

    def test_imul_imm_chain_preserves_value(self, machine, process):
        instructions = [MovImm("a", 123)]
        instructions += [ImulImm("a", "a", 1)] * 20
        instructions.append(Halt())
        result = run(machine, process, instructions)
        assert result.regs["a"] == 123

    def test_u64_wraparound(self, machine, process):
        result = run(
            machine,
            process,
            [MovImm("a", (1 << 64) - 1), AluImm("a", "a", 1), Halt()],
        )
        assert result.regs["a"] == 0

    def test_unknown_register_reads_zero(self, machine, process):
        result = run(machine, process, [Mov("b", "never_set"), Halt()])
        assert result.regs["b"] == 0


class TestMemory:
    def test_store_then_load_after_fence(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        result = run(
            machine,
            process,
            [
                MovImm("addr", buf),
                MovImm("val", 0xABCD),
                Store(base="addr", src="val"),
                Mfence(),
                Load("out", base="addr"),
                Halt(),
            ],
        )
        assert result.regs["out"] == 0xABCD

    def test_store_to_load_forwarding_without_fence(self, machine, process):
        """A resolved store forwards to a younger load from the SQ."""
        buf = machine.kernel.map_anonymous(process, pages=1)
        result = run(
            machine,
            process,
            [
                MovImm("addr", buf),
                MovImm("val", 99),
                Store(base="addr", src="val"),
                Load("out", base="addr"),
                Halt(),
            ],
        )
        assert result.regs["out"] == 99

    def test_narrow_store_load(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        result = run(
            machine,
            process,
            [
                MovImm("addr", buf),
                MovImm("val", 0x1FF),
                Store(base="addr", src="val", width=1),
                Mfence(),
                Load("out", base="addr", width=1),
                Halt(),
            ],
        )
        assert result.regs["out"] == 0xFF

    def test_store_persists_to_memory(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        run(
            machine,
            process,
            [
                MovImm("addr", buf),
                MovImm("val", 7),
                Store(base="addr", src="val"),
                Halt(),
            ],
        )
        assert machine.kernel.read(process, buf, 1)[0] == 7

    def test_load_offset_addressing(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf + 16, (1234).to_bytes(8, "little"))
        result = run(
            machine,
            process,
            [MovImm("addr", buf), Load("out", base="addr", offset=16), Halt()],
        )
        assert result.regs["out"] == 1234

    def test_clflush_slows_next_load(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        warm = run(
            machine,
            process,
            [MovImm("addr", buf), Load("a", base="addr"), Halt()],
        )
        cached = run(
            machine,
            process,
            [MovImm("addr", buf), Load("a", base="addr"), Halt()],
        )
        flushed = run(
            machine,
            process,
            [
                MovImm("addr", buf),
                Clflush(base="addr"),
                Load("a", base="addr"),
                Halt(),
            ],
        )
        assert flushed.cycles > cached.cycles + 100  # memory vs L1

    def test_load_unmapped_raises(self, machine, process):
        with pytest.raises(SegmentationFault):
            run(
                machine,
                process,
                [MovImm("addr", 0xDEAD0000), Load("a", base="addr"), Halt()],
            )

    def test_fault_handler_label(self, machine, process):
        result = run(
            machine,
            process,
            [
                MovImm("addr", 0xDEAD0000),
                Load("a", base="addr"),
                MovImm("ok", 0),  # squashed wrong path
                Halt(),
                Label("fault_handler"),
                MovImm("ok", 1),
                Halt(),
            ],
        )
        assert result.regs["ok"] == 1
        assert result.rollbacks == 1


class TestBranches:
    def test_taken_branch(self, machine, process):
        result = run(
            machine,
            process,
            [
                MovImm("cond", 0),
                Jz("cond", "skip"),
                MovImm("x", 1),
                Label("skip"),
                Halt(),
            ],
        )
        assert result.regs.get("x", 0) == 0

    def test_not_taken_branch(self, machine, process):
        result = run(
            machine,
            process,
            [
                MovImm("cond", 5),
                Jz("cond", "skip"),
                MovImm("x", 1),
                Label("skip"),
                Halt(),
            ],
        )
        assert result.regs["x"] == 1

    def test_branch_trains_and_mispredicts(self, machine, process):
        """After training taken, a not-taken run pays a rollback."""
        program = machine.load_program(
            process,
            Program(
                [
                    MovImm("x", 0),
                    Jz("cond", "out"),
                    MovImm("x", 1),
                    Label("out"),
                    Halt(),
                ],
                name="branchy",
            ),
        )
        for _ in range(4):  # train strongly taken
            machine.run(process, program, {"cond": 0})
        result = machine.run(process, program, {"cond": 7})
        assert result.regs["x"] == 1  # architecturally correct
        assert result.rollbacks == 1


class TestTiming:
    def test_rdpru_reads_progressing_cycles(self, machine, process):
        result = run(
            machine,
            process,
            [Rdpru("t0"), MovImm("a", 1)] + [ImulImm("a", "a", 1)] * 10 + [Rdpru("t1"), Halt()],
        )
        assert result.regs["t1"] > result.regs["t0"]

    def test_thread_cycles_accumulate(self, machine, process):
        before = machine.core.thread(0).cycles
        run(machine, process, [MovImm("a", 1), Halt()])
        assert machine.core.thread(0).cycles > before

    def test_imul_chain_costs_three_per_link(self, machine, process):
        short = run(
            machine, process, [MovImm("a", 1)] + [ImulImm("a", "a", 1)] * 5 + [Halt()]
        )
        long = run(
            machine, process, [MovImm("a", 1)] + [ImulImm("a", "a", 1)] * 15 + [Halt()]
        )
        lat = machine.core.model.latency.imul
        assert long.cycles - short.cycles == pytest.approx(10 * lat, abs=12)

    def test_deterministic_across_machines(self):
        def one_run():
            machine = Machine(seed=11)
            process = machine.kernel.create_process("p")
            buf = machine.kernel.map_anonymous(process, pages=1)
            return run(
                machine,
                process,
                [MovImm("addr", buf), Load("x", base="addr"), Halt()],
            ).cycles

        assert one_run() == one_run()
