"""PMC event attribution (paper Section III-B, Fig 2's methodology).

The pipeline increments the five PPR-named events organically; these
tests pin the counter bank's semantics and then drive the stld
microbenchmark through a sequence producing **all eight execution
types**, asserting each type's per-invocation PMC delta matches its
qualitative Fig 2 profile (stall tokens for predicted-aliasing types,
rollbacks for D/G only, forwards wherever data came from the store
queue or PSF).
"""

import pytest

from repro.core.exec_types import ExecType
from repro.cpu.pmc import Pmc, PmcEvent
from repro.revng.sequences import parse
from repro.revng.stld import StldHarness

#: A probe sequence visiting every TABLE I region: the short a/n bursts
#: after the initial enable walk the sticky S2 states (types B and F),
#: which the paper's plain "40n, 40a" alternation never enters.  Checked
#: against the abstract state machine: all eight types appear.
_SEQUENCE = "6a, 20n, 6a, 4n, 3a, 3n, 40a, 40n, 40a"


class TestPmcBank:
    def test_counters_start_at_zero(self):
        pmc = Pmc()
        assert all(pmc.read(event) == 0 for event in PmcEvent.ALL)

    def test_add_and_read(self):
        pmc = Pmc()
        pmc.add(PmcEvent.STLF)
        pmc.add(PmcEvent.STLF, 2)
        assert pmc.read(PmcEvent.STLF) == 3

    def test_snapshot_covers_every_event(self):
        pmc = Pmc()
        assert set(pmc.snapshot()) == set(PmcEvent.ALL)

    def test_delta_since_isolates_a_window(self):
        pmc = Pmc()
        pmc.add(PmcEvent.LD_DISPATCH, 5)
        snapshot = pmc.snapshot()
        pmc.add(PmcEvent.LD_DISPATCH, 2)
        pmc.add(PmcEvent.ROLLBACK)
        delta = pmc.delta_since(snapshot)
        assert delta[PmcEvent.LD_DISPATCH] == 2
        assert delta[PmcEvent.ROLLBACK] == 1
        assert delta[PmcEvent.STLF] == 0

    def test_reset(self):
        pmc = Pmc()
        pmc.add(PmcEvent.RETIRED_OPS, 10)
        pmc.reset()
        assert pmc.read(PmcEvent.RETIRED_OPS) == 0


@pytest.fixture(scope="module")
def attributed():
    """(exec type, PMC delta) per stld invocation over the probe sequence."""
    harness = StldHarness()
    thread = harness.machine.core.thread(harness.thread_id)
    samples = []
    for token in parse(_SEQUENCE):
        snapshot = thread.pmc.snapshot()
        (exec_type,) = harness.run_events([token])
        samples.append((exec_type, thread.pmc.delta_since(snapshot)))
    return samples


class TestExecTypeAttribution:
    def test_all_eight_types_observed(self, attributed):
        assert {exec_type for exec_type, _ in attributed} == set(ExecType)

    def test_rollback_event_fires_for_d_and_g_only(self, attributed):
        for exec_type, delta in attributed:
            if exec_type.rollback:
                assert delta[PmcEvent.ROLLBACK] >= 1, exec_type
            else:
                assert delta[PmcEvent.ROLLBACK] == 0, exec_type

    def test_stall_tokens_follow_the_prediction(self, attributed):
        # Stalling types (A/B/E/F) burn SQ tokens waiting for the store's
        # address; bypass/PSF types don't wait, so no stall tokens.
        for exec_type, delta in attributed:
            if exec_type.stalled:
                assert delta[PmcEvent.SQ_STALL_TOKENS] > 0, exec_type
            else:
                assert delta[PmcEvent.SQ_STALL_TOKENS] == 0, exec_type

    def test_forward_event_matches_data_source(self, attributed):
        # STLF fires when the load's data came from the store queue or a
        # predictive forward; cache-sourced loads (E/F/H, and G's
        # transient bypass) never count one.
        for exec_type, delta in attributed:
            if exec_type.data_source in ("sq", "forward"):
                assert delta[PmcEvent.STLF] >= 1, exec_type
            else:
                assert delta[PmcEvent.STLF] == 0, exec_type

    def test_every_invocation_dispatches_loads_and_retires(self, attributed):
        for exec_type, delta in attributed:
            assert delta[PmcEvent.LD_DISPATCH] >= 1, exec_type
            assert delta[PmcEvent.RETIRED_OPS] > 0, exec_type

    def test_rollback_types_redispatch_the_load(self, attributed):
        # A squash replays the wrong path, so D/G dispatch strictly more
        # loads than the fastest clean type observed.
        clean_min = min(
            delta[PmcEvent.LD_DISPATCH]
            for exec_type, delta in attributed
            if not exec_type.rollback
        )
        for exec_type, delta in attributed:
            if exec_type.rollback:
                assert delta[PmcEvent.LD_DISPATCH] > clean_min, exec_type
