"""HardwareThread semantics: SMT partitioning and flush hooks.

Section IV-A: PSFP and SSBP are partitioned (likely duplicated) between
the two SMT threads of a core, so training on one sibling must never
move the other sibling's predictor state.  The kernel-visible hooks
follow Section IV-A/VI-B: a context switch flushes PSFP but (vulnerably)
not SSBP unless the mitigation is on; suspension flushes both.
"""

import pytest

from repro.core.config import default_model
from repro.core.counters import CounterState
from repro.core.spec_ctrl import SpecCtrl
from repro.cpu.machine import Machine
from repro.cpu.thread import HardwareThread

_STORE, _LOAD = 0x11, 0x22


def make_thread(thread_id: int = 0) -> HardwareThread:
    return HardwareThread(thread_id, default_model(), SpecCtrl())


def train(thread: HardwareThread, rounds: int = 6) -> None:
    """Aliasing accesses until the pair's counters are clearly non-zero."""
    for _ in range(rounds):
        thread.unit.access(_STORE, _LOAD, aliasing=True)


class TestPerThreadState:
    def test_threads_own_private_structures(self):
        a, b = make_thread(0), make_thread(1)
        assert a.unit is not b.unit
        assert a.store_queue is not b.store_queue
        assert a.tlb is not b.tlb
        assert a.pmc is not b.pmc

    def test_training_one_sibling_leaves_the_other_cold(self):
        a, b = make_thread(0), make_thread(1)
        train(a)
        assert a.unit.state_for(_STORE, _LOAD) != CounterState()
        assert b.unit.state_for(_STORE, _LOAD) == CounterState()

    def test_smt_siblings_of_one_core_are_isolated(self):
        # The same invariant through the real machine: both siblings see
        # the same (store, load) hashes, only thread 0 trains.
        machine = Machine(seed=7)
        t0 = machine.core.thread(0)
        t1 = machine.core.thread(1)
        train(t0)
        assert t0.unit.state_for(_STORE, _LOAD) != CounterState()
        assert t1.unit.state_for(_STORE, _LOAD) == CounterState()

    def test_cycles_advance_monotonically(self):
        thread = make_thread()
        thread.advance(10)
        thread.advance(0)
        assert thread.cycles == 10
        with pytest.raises(ValueError):
            thread.advance(-1)


class TestFlushHooks:
    def test_context_switch_flushes_psfp_not_ssbp(self):
        thread = make_thread()
        train(thread)
        assert thread.unit.psfp.occupancy > 0
        assert thread.unit.ssbp.occupancy > 0
        thread.on_context_switch(next_pid=42)
        assert thread.unit.psfp.occupancy == 0
        assert thread.unit.ssbp.occupancy > 0  # Vulnerability: SSBP survives
        assert thread.current_pid == 42
        assert thread.unit.context_switches == 1

    def test_context_switch_can_flush_ssbp(self):
        thread = make_thread()
        train(thread)
        thread.on_context_switch(next_pid=1, flush_ssbp=True)
        assert thread.unit.psfp.occupancy == 0
        assert thread.unit.ssbp.occupancy == 0

    def test_context_switch_flushes_tlb(self):
        thread = make_thread()
        thread.tlb.fill(0x1000, 0x2000)
        assert thread.tlb.lookup(0x1000) is not None
        thread.on_context_switch(next_pid=None)
        assert thread.tlb.lookup(0x1000) is None

    def test_suspend_flushes_both_predictors(self):
        thread = make_thread()
        train(thread)
        thread.on_suspend()
        assert thread.unit.psfp.occupancy == 0
        assert thread.unit.ssbp.occupancy == 0
        assert thread.unit.suspends == 1

    def test_flushes_do_not_leak_to_the_sibling(self):
        a, b = make_thread(0), make_thread(1)
        train(a)
        train(b)
        a.on_suspend()
        assert a.unit.ssbp.occupancy == 0
        assert b.unit.ssbp.occupancy > 0
