"""Bounds, eviction and invalidation of the two content-keyed LRUs.

Campaign workloads rebuild ``Program`` objects constantly, so both the
shared decode cache (:mod:`repro.cpu.isa`) and the compiled-closure
cache (:mod:`repro.cpu.compiler`) are bounded LRUs keyed by program
content.  These tests pin the contract that makes the bound safe:
eviction never changes behaviour (an evicted entry is rebuilt, not
lost), recency protects the working set, and in-place program edits
invalidate rather than serve stale tables.
"""

import pytest

from repro.core.config import LatencyModel
from repro.cpu import compiler, isa
from repro.cpu.isa import AluImm, Halt, MovImm, Program
from repro.cpu.machine import Machine


def make_program(value, name="cache-test"):
    return Program(
        [MovImm("a", value), AluImm("b", "a", 1, "add"), Halt()],
        name=name,
    )


@pytest.fixture
def small_decode_cache():
    previous = isa.set_decode_cache_size(4)
    isa.clear_decode_cache()
    yield
    isa.set_decode_cache_size(previous)
    isa.clear_decode_cache()


@pytest.fixture
def small_compile_cache():
    previous = compiler.set_compile_cache_size(4)
    compiler.clear_compile_cache()
    yield
    compiler.set_compile_cache_size(previous)
    compiler.clear_compile_cache()


class TestDecodeCacheBounds:
    def test_occupancy_never_exceeds_bound(self, small_decode_cache):
        for value in range(10):
            make_program(value).decoded()
        info = isa.decode_cache_info()
        assert info["size"] <= info["max_size"] == 4
        assert info["evictions"] == 6

    def test_fresh_instance_hits_shared_cache(self, small_decode_cache):
        make_program(7).decoded()
        before = isa.decode_cache_info()["hits"]
        # A brand-new Program around the same content must share.
        assert make_program(7).decoded() is make_program(7).decoded()
        assert isa.decode_cache_info()["hits"] > before

    def test_eviction_is_lru_ordered(self, small_decode_cache):
        programs = [make_program(value) for value in range(4)]
        for program in programs:
            program.decoded()
        # Touch the oldest content via a fresh instance, then overflow
        # by one: the evictee must be value=1, not the refreshed value=0.
        make_program(0).decoded()
        make_program(99).decoded()
        hits = isa.decode_cache_info()["hits"]
        make_program(0).decoded()  # still cached
        assert isa.decode_cache_info()["hits"] == hits + 1
        make_program(1).decoded()  # evicted: decodes again
        assert isa.decode_cache_info()["hits"] == hits + 1

    def test_evicted_content_is_rebuilt_identically(self, small_decode_cache):
        program = make_program(5)
        first = program.decoded()
        for value in range(10, 20):  # flush value=5 out of the LRU
            make_program(value).decoded()
        rebuilt = make_program(5).decoded()
        assert rebuilt is not first
        assert rebuilt.ops == first.ops
        assert rebuilt.args == first.args
        assert rebuilt.ivas == first.ivas

    def test_clear_resets_counters_and_entries(self, small_decode_cache):
        make_program(1).decoded()
        isa.clear_decode_cache()
        info = isa.decode_cache_info()
        assert info["size"] == 0
        assert info["hits"] == info["misses"] == info["evictions"] == 0

    def test_shrinking_evicts_down(self, small_decode_cache):
        for value in range(4):
            make_program(value).decoded()
        isa.set_decode_cache_size(2)
        try:
            assert isa.decode_cache_info()["size"] <= 2
        finally:
            isa.set_decode_cache_size(4)


class TestCompileCacheBounds:
    def test_occupancy_never_exceeds_bound(self, small_compile_cache):
        lat = LatencyModel()
        for value in range(10):
            compiler.compile_program(make_program(value), lat)
        info = compiler.compile_cache_info()
        assert info["size"] <= info["max_size"] == 4
        assert info["evictions"] >= 6

    def test_fresh_instance_shares_closure_table(self, small_compile_cache):
        lat = LatencyModel()
        first = compiler.compile_program(make_program(3), lat)
        second = compiler.compile_program(make_program(3), lat)
        assert second is first

    def test_instance_fast_path_hits(self, small_compile_cache):
        lat = LatencyModel()
        program = make_program(3)
        first = compiler.compile_program(program, lat)
        hits = compiler.compile_cache_info()["hits"]
        assert compiler.compile_program(program, lat) is first
        assert compiler.compile_cache_info()["hits"] == hits + 1

    def test_latency_model_is_part_of_the_key(self, small_compile_cache):
        program = make_program(3)
        fast = compiler.compile_program(program, LatencyModel())
        slow = compiler.compile_program(make_program(3), LatencyModel(imul=9))
        assert slow is not fast
        assert compiler.compile_cache_info()["size"] == 2

    def test_inplace_edit_invalidates(self, small_compile_cache):
        lat = LatencyModel()
        program = make_program(3)
        first = compiler.compile_program(program, lat)
        program.instructions[0] = MovImm("a", 44)
        second = compiler.compile_program(program, lat)
        assert second is not first

    def test_machine_run_sees_inplace_edit(self, small_compile_cache):
        """End to end: the compiled engine must not execute stale code."""
        machine = Machine(seed=1, engine="compiled")
        process = machine.kernel.create_process("p")
        program = machine.load_program(
            process, Program([MovImm("a", 1), Halt()], name="edit")
        )
        assert machine.run(process, program).regs["a"] == 1
        program.instructions[0] = MovImm("a", 2)
        assert machine.run(process, program).regs["a"] == 2

    def test_eviction_does_not_change_results(self, small_compile_cache):
        machine = Machine(seed=1, engine="compiled")
        process = machine.kernel.create_process("p")
        programs = [
            machine.load_program(process, make_program(value, name=f"p{value}"))
            for value in range(8)
        ]
        first = [machine.run(process, p).regs["b"] for p in programs]
        # Round 2 re-runs every program; half were evicted and recompile.
        second = [machine.run(process, p).regs["b"] for p in programs]
        assert first == second == [value + 1 for value in range(8)]
        assert compiler.compile_cache_info()["evictions"] >= 4
