"""Bit-identity of the compiled closure engine against the interpreter.

``Machine(engine="compiled")`` must be an *optimization*, never a
behaviour change: registers (values and dict insertion order), memory,
cycle counts, rollbacks, PMC attribution and the exact telemetry event
sequence all have to match the reference interpreter on every program.
These property tests drive both engines over campaign-generator fuzz
programs under every mitigation mode and compare complete observable
signatures.

The compiled engine tiers its code generation by hotness
(``FUSE_AFTER_RUNS``): cold programs run per-instruction closures,
hot programs run fused superblock bodies.  Each tier — and the
transition between them — is covered separately, since they execute
different generated code.
"""

import random

import pytest

from repro.cpu import compiler
from repro.cpu.compiler import FUSE_AFTER_RUNS
from repro.cpu.isa import AluImm, Halt, MovImm, Program, Store
from repro.cpu.machine import Machine
from repro.fuzz.gen import BUF_PAGES, fuzz_program
from repro.fuzz.harness import DEFAULT_FILL, MITIGATIONS, execute_program

pytestmark = pytest.mark.usefixtures("fresh_compile_cache")


@pytest.fixture
def fresh_compile_cache():
    """Isolate hotness counters: cached CompiledPrograms carry ``runs``."""
    compiler.clear_compile_cache()
    yield
    compiler.clear_compile_cache()


def signature(execution):
    """Every observable of one run, in comparable form."""
    result = execution.result
    pmc = execution.machine.core.threads[0].pmc.counts
    return (
        execution.status,
        list(execution.regs.items()),  # values AND insertion order
        execution.memory,
        None if result is None else (
            result.cycles,
            result.retired,
            result.rollbacks,
            [repr(event) for event in result.events],
        ),
        sorted((str(key), value) for key, value in pmc.items()),
    )


def assert_engines_agree(seed, mitigation):
    instructions = fuzz_program(random.Random(seed), 12)
    reference = signature(execute_program(
        instructions, seed=seed, mitigation=mitigation, engine="interpreter"
    ))
    compiled = signature(execute_program(
        instructions, seed=seed, mitigation=mitigation, engine="compiled"
    ))
    assert compiled == reference, f"divergence at seed={seed} {mitigation=}"


@pytest.mark.parametrize("mitigation", MITIGATIONS)
def test_cold_scalar_tier_forty_seeds(mitigation):
    """Fresh programs run once each: the per-instruction closure tier."""
    for seed in range(40):
        assert_engines_agree(seed, mitigation)


@pytest.mark.parametrize("mitigation", MITIGATIONS)
def test_fused_tier_bit_identical(mitigation, monkeypatch):
    """Force fused superblock codegen from the first run and re-check."""
    monkeypatch.setattr(compiler, "FUSE_AFTER_RUNS", 0)
    for seed in range(12):
        assert_engines_agree(seed, mitigation)


def dense_program():
    """Straight-line ALU/store runs: guaranteed fusable superblocks."""
    body = []
    for i in range(6):
        body.append(MovImm("a", i + 1))
        body.append(AluImm("b", "a", i, "add"))
        body.append(AluImm("c", "b", 3, "xor"))
        body.append(Store(base="buf", offset=8 * i, src="c", width=8))
    body.append(Halt())
    return body


def run_signature(machine, process, program, buf):
    machine.kernel.write(process, buf, DEFAULT_FILL)
    result = machine.run(process, program, {"buf": buf})
    pmc = machine.core.threads[0].pmc.counts
    return (
        result.cycles,
        result.retired,
        result.rollbacks,
        [repr(event) for event in result.events],
        list(result.regs.items()),
        sorted((str(key), value) for key, value in pmc.items()),
        machine.kernel.read(process, buf, 64),
    )


def test_transition_to_fused_is_seamless():
    """One warm machine per engine, re-running the same program through
    the hotness threshold: runs 1..FUSE_AFTER_RUNS-1 execute scalar
    closures, later runs execute fused bodies, and every single run must
    match the interpreter bit for bit."""
    setups = {}
    for engine in ("interpreter", "compiled"):
        machine = Machine(seed=3, engine=engine)
        process = machine.kernel.create_process("t")
        buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
        program = machine.load_program(
            process, Program(dense_program(), name="dense")
        )
        setups[engine] = (machine, process, program, buf)
    for run in range(FUSE_AFTER_RUNS + 4):
        signatures = {
            engine: run_signature(*setup) for engine, setup in setups.items()
        }
        assert signatures["compiled"] == signatures["interpreter"], \
            f"divergence on run {run}"
    # Prove the fused tier actually engaged, or the test was vacuous.
    _, _, program, _ = setups["compiled"]
    from repro.core.config import LatencyModel
    compiled = compiler.compile_program(program, LatencyModel())
    assert compiled.runs > FUSE_AFTER_RUNS
    assert any(isinstance(block, tuple)
               for block in compiled.blocks if block is not None)


def test_fuzz_programs_rerun_through_threshold():
    """The warm-worker pattern on fuzz shapes: same program, one machine
    pair, enough repetitions to cross the hotness threshold mid-test."""
    for seed in (5, 21):
        setups = {}
        for engine in ("interpreter", "compiled"):
            machine = Machine(seed=seed, engine=engine)
            process = machine.kernel.create_process("t")
            buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
            program = machine.load_program(
                process,
                Program(fuzz_program(random.Random(seed), 10), name="fuzz"),
            )
            setups[engine] = (machine, process, program, buf)
        for run in range(FUSE_AFTER_RUNS + 2):
            signatures = {
                engine: run_signature(*setup)
                for engine, setup in setups.items()
            }
            assert signatures["compiled"] == signatures["interpreter"], \
                f"divergence at seed={seed} run {run}"
