"""Repr round-tripping: every instruction class survives the replay path.

Findings artifacts persist shrunk reproducers as dataclass reprs and
rebuild them with :func:`repro.cpu.isa.instruction_from_repr`; the
static scanner leans on the same path to recover operands from IR node
sources.  A class that fails to round-trip would silently corrupt both,
so this pins all sixteen — including the no-dataflow ones (``Label``,
``Pad``, bare ``Instruction``) the generators rarely emit.
"""

import pytest

from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    Imul,
    ImulImm,
    Instruction,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Pad,
    Program,
    Rdpru,
    Store,
    instruction_from_repr,
    instructions_from_reprs,
)
from repro.errors import InvalidInstruction

#: One instance of every instruction class, defaults and non-defaults.
ALL_SIXTEEN = [
    Instruction(),
    Pad(),
    MovImm("a", -7),
    Mov("a", "b"),
    Alu("d", "a", "b", "xor"),
    AluImm("d", "s", 3, "sub"),
    Imul("d", "a", "b"),
    ImulImm("d", "s", 4096),
    Load("d", "buf", 16, 1),
    Store("buf", "s", 8, 4),
    Clflush("buf", 64),
    Mfence(),
    Rdpru("t"),
    Jz("c", "skip"),
    Label("skip"),
    Halt(),
]


def test_the_roster_really_is_all_sixteen_classes():
    classes = {type(instruction) for instruction in ALL_SIXTEEN}
    assert len(classes) == len(ALL_SIXTEEN) == 16


@pytest.mark.parametrize(
    "instruction", ALL_SIXTEEN, ids=lambda i: type(i).__name__
)
def test_round_trip(instruction):
    rebuilt = instruction_from_repr(repr(instruction))
    assert rebuilt == instruction
    assert type(rebuilt) is type(instruction)


def test_default_fields_round_trip_too():
    for instruction in (Alu("d", "a", "b"), AluImm("d", "s", 1),
                        Load("d", "buf"), Store("buf", "s"), Clflush("buf")):
        assert instruction_from_repr(repr(instruction)) == instruction


def test_whole_program_round_trips():
    reprs = [repr(instruction) for instruction in ALL_SIXTEEN]
    assert instructions_from_reprs(reprs) == ALL_SIXTEEN


def test_round_tripped_program_decodes_identically():
    # Sizes (and therefore layout/labels) must survive the rebuild.
    original = Program(list(ALL_SIXTEEN), name="rt")
    rebuilt = Program(
        instructions_from_reprs([repr(i) for i in ALL_SIXTEEN]), name="rt"
    )
    assert [i.size for i in rebuilt.instructions] == [
        i.size for i in original.instructions
    ]


@pytest.mark.parametrize("text", [
    "not python at all ((",
    "object()",                       # parses but is not an Instruction
    "1 + 1",
    "__import__('os').getcwd()",      # builtins are stripped
    "MovImm('a', 1).size",            # an int, not an instruction
])
def test_bad_reprs_raise_invalid_instruction(text):
    with pytest.raises(InvalidInstruction):
        instruction_from_repr(text)
