"""Pinned differential-fuzzing regressions.

Each entry once exposed a pipeline bug; they stay pinned so the bugs
stay dead:

* 42363 — a G-squash rewinding past an open branch window left the
  stale window armed; its later closure restored wrong-path state.
* 200104 — a wrong-path store at the store-queue head committed to
  memory inside a branch window (nothing older blocked it).
* 200006 — a bypassing load was validated only against the *nearest*
  unresolved store; an older, slower-resolving aliasing store slipped
  its data past the load.

The cases themselves live in :data:`repro.fuzz.corpus.REGRESSION_ENTRIES`
— the persistent corpus format the ``repro-fuzz`` campaign replays first
on every run — so the CLI and this test file can never drift apart.
"""

import pytest

from repro.fuzz.corpus import REGRESSION_ENTRIES
from repro.fuzz.gen import REGS, random_program  # noqa: F401  (shared generator)
from repro.fuzz.harness import check_entry


@pytest.mark.parametrize(
    "entry", REGRESSION_ENTRIES, ids=[entry.label for entry in REGRESSION_ENTRIES]
)
def test_differential_regression(entry):
    report = check_entry(entry)
    assert report.divergence is None, report.divergence.describe()
