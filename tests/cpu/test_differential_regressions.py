"""Pinned differential-fuzzing regressions.

Each seed below once exposed a pipeline bug; they stay pinned so the
bugs stay dead:

* 42363 — a G-squash rewinding past an open branch window left the
  stale window armed; its later closure restored wrong-path state.
* 200104 — a wrong-path store at the store-queue head committed to
  memory inside a branch window (nothing older blocked it).
* 200006 — a bypassing load was validated only against the *nearest*
  unresolved store; an older, slower-resolving aliasing store slipped
  its data past the load.
"""

import pytest

from tests.cpu.test_differential import architectural, run_both

REGRESSION_CASES = [
    (42363, 20, "stale branch window survives store squash"),
    (200104, 19, "wrong-path store commit inside branch window"),
    (200006, 26, "bypass misses older unresolved aliasing store"),
    # The rest of the first fuzzing campaign's failures, for breadth.
    (200058, 43, "campaign"),
    (200229, 39, "campaign"),
    (200322, 27, "campaign"),
    (200613, 38, "campaign"),
    (200860, 40, "campaign"),
]


@pytest.mark.parametrize(
    "seed, blocks", [(s, b) for s, b, _ in REGRESSION_CASES],
    ids=[label for _, _, label in REGRESSION_CASES],
)
def test_differential_regression(seed, blocks):
    pipe_regs, ref_regs, pipe_mem, ref_mem = run_both(seed, blocks)
    assert architectural(pipe_regs) == architectural(ref_regs)
    assert pipe_mem == ref_mem
