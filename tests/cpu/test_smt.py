"""SMT interleaved execution: partitioned predictors, shared caches.

Section IV-A: both predictors are partitioned between the two SMT
threads of a core; the data caches are shared.  These tests run two
programs *concurrently* (round-robin stepping) and check both halves.
"""

import pytest

from repro.cpu.isa import (
    AluImm,
    Halt,
    ImulImm,
    Load,
    Mov,
    MovImm,
    Program,
    Store,
)
from repro.cpu.machine import Machine
from repro.errors import SimulationLimitExceeded


def stld_program(repeats: int, aliasing: bool) -> Program:
    """``repeats`` aliasing (or disjoint) delayed store-load pairs."""
    instructions = []
    for _ in range(repeats):
        instructions += [Mov("t", "sbase")]
        instructions += [ImulImm("t", "t", 1)] * 20
        instructions += [
            MovImm("d", 0xDD),
            Store(base="t", src="d", width=8),
            Load("out", base="lbase", width=8),
        ]
    instructions.append(Halt())
    return Program(instructions, name="smt-stld")


@pytest.fixture()
def machine():
    return Machine(seed=606)


class TestRunSmt:
    def test_two_jobs_complete(self, machine):
        a = machine.kernel.create_process("a")
        b = machine.kernel.create_process("b")
        buf_a = machine.kernel.map_anonymous(a, pages=1)
        buf_b = machine.kernel.map_anonymous(b, pages=1)
        prog_a = machine.load_program(a, stld_program(3, aliasing=True))
        prog_b = machine.load_program(b, stld_program(3, aliasing=True))
        results = machine.run_smt(
            [
                (a, prog_a, {"sbase": buf_a, "lbase": buf_a}),
                (b, prog_b, {"sbase": buf_b, "lbase": buf_b}),
            ]
        )
        assert len(results) == 2
        assert all(r.regs["out"] == 0xDD for r in results)

    def test_too_many_jobs_rejected(self, machine):
        a = machine.kernel.create_process("a")
        prog = machine.load_program(a, Program([Halt()], name="x"))
        with pytest.raises(ValueError):
            machine.run_smt([(a, prog, None)] * 3)

    def test_step_budget_enforced(self, machine):
        a = machine.kernel.create_process("a")
        prog = machine.load_program(a, stld_program(50, True))
        buf = machine.kernel.map_anonymous(a, pages=1)
        with pytest.raises(SimulationLimitExceeded):
            machine.run_smt([(a, prog, {"sbase": buf, "lbase": buf})], max_steps=10)


class TestSmtPredictorPartitioning:
    def test_concurrent_training_stays_per_thread(self, machine):
        """Thread 0's aliasing pairs train thread 0's predictors only,
        even while thread 1 is actively executing its own pairs."""
        a = machine.kernel.create_process("smt-a")
        b = machine.kernel.create_process("smt-b")
        buf_a = machine.kernel.map_anonymous(a, pages=1)
        buf_b = machine.kernel.map_anonymous(b, pages=1)
        prog_a = machine.load_program(a, stld_program(6, True))
        prog_b = machine.load_program(b, stld_program(6, True))
        machine.run_smt(
            [
                (a, prog_a, {"sbase": buf_a, "lbase": buf_a}),
                (b, prog_b, {"sbase": buf_b, "lbase": buf_b}),
            ]
        )
        unit0 = machine.core.thread(0).unit
        unit1 = machine.core.thread(1).unit
        assert unit0 is not unit1
        # Both threads ran aliasing pairs concurrently; each trained its
        # OWN predictor copy (duplicated resources, Section IV-A), and
        # each holds only its own code's entry.
        assert unit0.ssbp.occupancy >= 1
        assert unit1.ssbp.occupancy >= 1
        tags0 = {e.load_tag for e in unit0.ssbp.entries()}
        tags1 = {e.load_tag for e in unit1.ssbp.entries()}
        assert not tags0 & tags1  # different code addresses, no bleed

    def test_disjoint_smt_activity_trains_nothing_on_sibling(self, machine):
        a = machine.kernel.create_process("smt-a")
        b = machine.kernel.create_process("smt-b")
        buf_a = machine.kernel.map_anonymous(a, pages=1)
        buf_b = machine.kernel.map_anonymous(b, pages=1)
        prog_a = machine.load_program(a, stld_program(5, True))   # aliasing
        prog_b = machine.load_program(b, stld_program(5, True))
        machine.run_smt(
            [
                (a, prog_a, {"sbase": buf_a, "lbase": buf_a}),          # aliasing
                (b, prog_b, {"sbase": buf_b, "lbase": buf_b + 0x80}),   # disjoint
            ]
        )
        assert machine.core.thread(0).unit.ssbp.occupancy >= 1
        assert machine.core.thread(1).unit.ssbp.occupancy == 0


class TestSmtSharedCaches:
    def test_sibling_warms_shared_lines(self, machine):
        """The cache hierarchy is core-shared: lines a sibling touched
        through a shared mapping are warm for this thread."""
        a = machine.kernel.create_process("warmer")
        b = machine.kernel.create_process("reader")
        buf_a = machine.kernel.map_anonymous(a, pages=1)
        shared = machine.kernel.map_shared(b, a, buf_a, pages=1)

        toucher = machine.load_program(
            a,
            Program(
                [AluImm("p", "base", 0, "add"), Load("x", base="p"), Halt()],
                name="touch",
            ),
        )
        reader = machine.load_program(
            b,
            Program([Load("y", base="base"), Halt()], name="read"),
        )
        machine.run_smt(
            [(a, toucher, {"base": buf_a}), (b, reader, {"base": shared})]
        )
        # Measure thread 1's reload now: the line must be cache-warm.
        warm = machine.run(b, reader, {"base": shared}, thread_id=1)
        assert warm.cycles < machine.core.model.latency.memory
