"""Pipeline tests: transient execution, rollback, and Vulnerability 4.

These exercise the paper's Fig 8 (transient windows opened by PSFP and
SSBP mispredictions) and Fig 9 (predictor updates inside any transient
window persist).
"""

import pytest

from repro.core.exec_types import ExecType
from repro.cpu.isa import (
    Alu,
    Halt,
    ImulImm,
    Jz,
    Label,
    Load,
    Mov,
    MovImm,
    Program,
    Store,
)
from repro.cpu.machine import Machine


@pytest.fixture()
def machine():
    return Machine(seed=5)


@pytest.fixture()
def process(machine):
    return machine.kernel.create_process("victim")


def delayed_store_load(buf, store_off, load_off, tail=()):
    """store [buf+store_off] = 0xDD (address delayed); load [buf+load_off]."""
    instructions = [
        MovImm("sbase", buf + store_off),
        Mov("t", "sbase"),
    ]
    instructions += [ImulImm("t", "t", 1)] * 20
    instructions += [
        MovImm("data", 0xDD),
        Store(base="t", src="data", width=8),
        MovImm("lbase", buf + load_off),
        Load("out", base="lbase", width=8),
    ]
    instructions += list(tail)
    instructions.append(Halt())
    return Program(instructions, name="spec")


class TestBypassWindow:
    """Fresh predictors predict non-aliasing: an aliasing pair squashes (G)."""

    def test_aliasing_pair_rolls_back_and_corrects(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf, (0xCC).to_bytes(8, "little"))
        program = machine.load_program(process, delayed_store_load(buf, 0, 0))
        result = machine.run(process, program)
        # Architectural value is the store's data, not the stale 0xCC.
        assert result.regs["out"] == 0xDD
        assert result.rollbacks == 1
        assert [e.exec_type for e in result.events] == [ExecType.G]

    def test_disjoint_pair_bypasses_cleanly(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf + 64, (0xCC).to_bytes(8, "little"))
        program = machine.load_program(process, delayed_store_load(buf, 0, 64))
        result = machine.run(process, program)
        assert result.regs["out"] == 0xCC
        assert result.rollbacks == 0
        assert [e.exec_type for e in result.events] == [ExecType.H]

    def test_stale_value_flows_transiently(self, machine, process):
        """The bypassing load returns the OLD memory value inside the
        window; a dependent load encodes it into the cache, and that cache
        line survives the rollback — the Fig 8 (4b) leak primitive."""
        buf = machine.kernel.map_anonymous(process, pages=1)
        probe = machine.kernel.map_anonymous(process, pages=257)
        machine.kernel.write(process, buf, (3).to_bytes(8, "little"))  # stale idx 3
        # Transiently touch probe + out*4096 ("out" is the stale 3 here).
        tail = [
            MovImm("pbase", probe),
            ImulImm("scaled", "out", 4096),
            Alu("paddr_reg", "pbase", "scaled", "add"),
            Load("leak", base="paddr_reg"),
        ]
        program = machine.load_program(process, delayed_store_load(buf, 0, 0, tail))
        result = machine.run(process, program)
        # Architecturally the replay uses the correct value 0xDD.
        assert result.regs["out"] == 0xDD
        assert result.rollbacks == 1
        # Microarchitecturally, the stale-indexed line (3 * 4096) was
        # touched in the window and SURVIVES the squash.
        stale_paddr = machine.kernel.translate(process, probe + 3 * 4096)
        assert machine.core.hierarchy.probe_level(stale_paddr).value != "memory"


class TestPsfWindow:
    """A PSF-trained pair forwards the wrong data for a disjoint load (D)."""

    def _train_psf(self, machine, process, program, buf):
        """Drive the pair's PSFP entry into the PSF-enabled state by
        running aliasing pairs (G then A until C1 <= 12)."""
        for _ in range(6):
            machine.run(process, program, {"alias": 1})

    def test_wrong_forward_rolls_back(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf + 64, (0xCC).to_bytes(8, "little"))
        # One program, two behaviours chosen by the "alias" register:
        # store target = buf when alias=1, buf+128 when alias=0.
        instructions = [
            MovImm("sbase", buf),
            ImulImm("off", "alias", 128),
            MovImm("one", 1),
        ]
        from repro.cpu.isa import Alu, AluImm

        instructions += [
            AluImm("neg", "alias", 0, "add"),
        ]
        # store address = buf + (1 - alias) * 128 : alias=1 -> buf+... easier:
        # store address = buf + off where off = (alias == 1) ? 0 : 128.
        instructions = [
            MovImm("base", buf),
            MovImm("k128", 128),
            # off = 128 - alias*128
            ImulImm("t1", "alias", 128),
            Alu("off", "k128", "t1", "sub"),
            Alu("sbase", "base", "off", "add"),
            Mov("t", "sbase"),
        ]
        instructions += [ImulImm("t", "t", 1)] * 20
        instructions += [
            MovImm("data", 0xDD),
            Store(base="t", src="data", width=8),
            Load("out", base="base", width=8),  # always loads buf
            Halt(),
        ]
        program = machine.load_program(process, Program(instructions, name="psf"))
        self._train_psf(machine, process, program, buf)
        # Confirm training reached the PSF state (type C on aliasing run).
        result = machine.run(process, program, {"alias": 1})
        assert result.events[-1].exec_type is ExecType.C
        # Now run disjoint: PSF forwards 0xDD to the load of buf, which is
        # wrong (buf holds the previous aliased store's 0xDD... use fresh
        # memory value to make wrongness observable).
        machine.kernel.write(process, buf, (0x11).to_bytes(8, "little"))
        result = machine.run(process, program, {"alias": 0})
        assert result.events[-1].exec_type is ExecType.D
        assert result.rollbacks == 1
        assert result.regs["out"] == 0x11  # corrected after the squash

    def test_correct_forward_is_type_c_without_rollback(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        program = machine.load_program(process, delayed_store_load(buf, 0, 0))
        for _ in range(6):
            machine.run(process, program)
        result = machine.run(process, program)
        assert result.events[-1].exec_type is ExecType.C
        assert result.rollbacks == 0
        assert result.regs["out"] == 0xDD


class TestSquashCancelsYoungerWindow:
    def test_store_squash_before_open_branch_window(self, machine, process):
        """Regression (found by differential fuzzing): a G-squash that
        rewinds to a load OLDER than an open branch window must cancel
        the window — otherwise the window later "closes" onto state
        snapshotted on the squashed path."""
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf, (5).to_bytes(8, "little"))
        instructions = [MovImm("sbase", buf), Mov("t", "sbase")]
        instructions += [ImulImm("t", "t", 1)] * 30
        instructions += [
            MovImm("data", 0xDD),
            Store(base="t", src="data", width=8),   # resolves late
            Load("out", base="sbase", width=8),     # bypasses: stale 5, G later
            # A branch whose condition depends on the (stale) load: it
            # mispredicts and opens a window before the store resolves.
            Jz("out", "taken"),
            MovImm("x", 1),
            Label("taken"),
            MovImm("y", 2),
            Halt(),
        ]
        program = machine.load_program(process, Program(instructions, name="rw"))
        # Train the branch taken so the (non-zero) stale value mispredicts.
        trainer = machine.load_program(
            process,
            Program(list(program.instructions), name="trainer"),
        )
        result = machine.run(process, program)
        assert result.regs["out"] == 0xDD
        # The correct path must have fully re-executed: out != 0 -> not
        # taken -> x = 1 is architectural.
        assert result.regs.get("x") == 1
        assert result.regs.get("y") == 2


class TestVuln4TransientUpdates:
    """Predictor updates made inside squashed windows persist (Fig 9)."""

    def test_branch_window_updates_survive(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        # The condition resolves late (multiply chain on "seed"), and the
        # taken path contains an aliasing delayed store-load pair.
        instructions = [Mov("cond", "seed")]
        instructions += [ImulImm("cond", "cond", 1)] * 30
        instructions += [
            Jz("cond", "wrong_path"),
            Halt(),
            Label("wrong_path"),
            MovImm("sbase", buf),
            Mov("t", "sbase"),
        ]
        instructions += [ImulImm("t", "t", 1)] * 20
        instructions += [
            MovImm("data", 0xDD),
            Store(base="t", src="data", width=8),
            # Load address comes from "poff": disjoint during training
            # (no predictor change, type H), aliasing in the attack run.
            MovImm("lbase", buf),
            Alu("laddr", "lbase", "poff", "add"),
            Load("out", base="laddr", width=8),
            Halt(),
        ]
        program = machine.load_program(process, Program(instructions, name="v4"))
        # Train the branch taken (seed=0 -> cond=0 -> taken) with a
        # disjoint pair so the predictors stay fresh.
        for _ in range(4):
            machine.run(process, program, {"seed": 0, "poff": 64})
        unit = machine.core.thread(0).unit
        # Mispredicted run: seed=1 -> not taken, but predicted taken, so
        # the (now aliasing) stld executes transiently on the wrong path.
        result = machine.run(process, program, {"seed": 1, "poff": 0})
        assert result.rollbacks >= 1
        assert "out" not in result.regs  # the wrong path was squashed
        # ... yet the wrong-path stld's G event trained the predictors.
        assert any(e.exec_type is ExecType.G for e in result.events)
        assert unit.ssbp.occupancy >= 1

    def test_faulty_load_window_updates_survive(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        instructions = [
            MovImm("bad", 0xDEAD0000),
            Load("x", base="bad"),  # faults; younger work is transient
            MovImm("sbase", buf),
            Mov("t", "sbase"),
        ]
        instructions += [ImulImm("t", "t", 1)] * 10
        instructions += [
            MovImm("data", 1),
            Store(base="t", src="data", width=8),
            Load("out", base="sbase", width=8),
            Halt(),
            Label("fault_handler"),
            MovImm("handled", 1),
            Halt(),
        ]
        program = machine.load_program(process, Program(instructions, name="flt"))
        unit = machine.core.thread(0).unit
        result = machine.run(process, program)
        assert result.regs.get("handled") == 1
        assert any(e.exec_type is ExecType.G for e in result.events)
        # The G event inside the fault window charged the predictors.
        assert unit.ssbp.occupancy >= 1

    def test_memory_window_nested_update_survives(self, machine, process):
        """An stld inside a bypass window (the Spectre-CTL covert-channel
        mechanism): the inner pair's predictor update persists after the
        outer squash."""
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf, (0).to_bytes(8, "little"))
        instructions = [
            MovImm("sbase", buf),
            Mov("t", "sbase"),
        ]
        instructions += [ImulImm("t", "t", 1)] * 30
        instructions += [
            MovImm("data", 0xDD),
            Store(base="t", src="data", width=8),   # pending store
            Load("first", base="sbase", width=8),   # bypass -> G, squash later
            # inner, transient load aliasing the same pending store:
            Load("second", base="sbase", offset=0, width=8),
            Halt(),
        ]
        program = machine.load_program(process, Program(instructions, name="ctl"))
        result = machine.run(process, program)
        assert result.rollbacks == 1
        # Both loads produced events and both updated the predictors.
        assert len(result.events) >= 2
        g_events = [e for e in result.events if e.exec_type is ExecType.G]
        assert len(g_events) >= 1
