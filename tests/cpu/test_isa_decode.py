"""Decode-cache behaviour of :meth:`repro.cpu.isa.Program.decoded`.

The pipeline interprets the decoded dense form, so a stale cache would
silently execute the *old* program after an in-place edit or a base
rebind.  These tests pin the invalidation rules: content compare on the
instruction tuple plus the base IVA.
"""

from repro.cpu.isa import (
    OP_ALUIMM,
    OP_HALT,
    OP_JZ,
    OP_LOAD,
    OP_MOVIMM,
    AluImm,
    Halt,
    Jz,
    Label,
    Load,
    MovImm,
    Program,
)
from repro.cpu.machine import Machine


def sample_program(base=0):
    return Program(
        [
            MovImm("a", 7),
            AluImm("b", "a", 1, "add"),
            Jz("b", "done"),
            Load("c", base="a", width=8),
            Label("done"),
            Halt(),
        ],
        base_iva=base,
        name="decode-test",
    )


class TestDecodedForm:
    def test_dense_form_matches_instructions(self):
        program = sample_program()
        dec = program.decoded()
        assert dec.n == len(program)
        assert dec.ops[0] == OP_MOVIMM
        assert dec.ops[1] == OP_ALUIMM
        assert dec.ops[2] == OP_JZ
        assert dec.ops[3] == OP_LOAD
        assert dec.ops[5] == OP_HALT
        # Jz operands resolve the label to its instruction index.
        cond, target, label = dec.args[2]
        assert (cond, label) == ("b", "done")
        assert target == 4
        # IVAs come from the layout.
        assert dec.ivas == [program.iva(i) for i in range(len(program))]

    def test_repeat_calls_reuse_cache(self):
        program = sample_program()
        assert program.decoded() is program.decoded()

    def test_inplace_edit_invalidates(self):
        program = sample_program()
        first = program.decoded()
        program.instructions[0] = MovImm("a", 99)
        second = program.decoded()
        assert second is not first
        assert second.args[0] == ("a", 99)
        # The rebuilt form is cached again.
        assert program.decoded() is second

    def test_length_change_invalidates(self):
        program = sample_program()
        first = program.decoded()
        program.instructions.insert(1, MovImm("z", 1))
        second = program.decoded()
        assert second is not first
        assert second.n == first.n + 1
        # Label target shifted by the insertion.
        assert second.args[3][1] == 5

    def test_base_rebind_invalidates_ivas(self):
        program = sample_program(base=0)
        first = program.decoded()
        program.base_iva = 0x4000
        program._layout()
        second = program.decoded()
        assert second is not first
        assert second.ivas[0] == 0x4000

    def test_relocated_program_decodes_at_new_base(self):
        program = sample_program(base=0)
        program.decoded()
        moved = program.relocate(0x2000)
        assert moved.decoded().ivas[0] == 0x2000

    def test_machine_run_sees_inplace_edit(self):
        """End to end: the interpreter must not execute a stale decode."""
        machine = Machine(seed=1)
        process = machine.kernel.create_process("p")
        program = machine.load_program(
            process, Program([MovImm("a", 1), Halt()], name="edit")
        )
        assert machine.run(process, program).regs["a"] == 1
        program.instructions[0] = MovImm("a", 2)
        assert machine.run(process, program).regs["a"] == 2
