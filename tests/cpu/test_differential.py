"""Differential testing: speculative pipeline vs reference interpreter.

Whatever the predictors guessed — bypasses, predictive forwards, branch
mispredictions — every squash must repair architectural state exactly.
Random programs (with deliberately speculation-heavy patterns) must end
with identical registers and identical memory under both executors.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import (
    Alu,
    AluImm,
    Halt,
    ImulImm,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Program,
    Store,
)
from repro.cpu.machine import Machine
from repro.cpu.reference import ReferenceInterpreter

BUF_PAGES = 2
BUF_BYTES = BUF_PAGES * 4096
REGS = ["r0", "r1", "r2", "r3"]


def random_program(rng: random.Random, blocks: int) -> list:
    """A random well-formed program over a data buffer.

    Addresses are always in-bounds (offsets are masked constants), and
    branches only jump forward, so every program terminates.
    """
    instructions: list = [MovImm(r, rng.randrange(1, 1 << 16)) for r in REGS]
    label_counter = 0
    for block in range(blocks):
        kind = rng.random()
        dst, a, b = (rng.choice(REGS) for _ in range(3))
        if kind < 0.25:
            instructions.append(
                Alu(dst, a, b, rng.choice(["add", "sub", "xor", "and", "or"]))
            )
            instructions.append(ImulImm(dst, dst, rng.choice([1, 3])))
        elif kind < 0.55:
            # A speculation-heavy racing pair: delayed store, racing load.
            store_off = rng.randrange(0, BUF_BYTES - 8, 8)
            load_off = (
                store_off if rng.random() < 0.5
                else rng.randrange(0, BUF_BYTES - 8, 8)
            )
            instructions.append(AluImm("sa", "buf", store_off, "add"))
            instructions.append(Mov("sd", "sa"))
            instructions.extend(
                ImulImm("sd", "sd", 1) for _ in range(rng.randrange(0, 24))
            )
            instructions.append(
                Store(base="sd", src=a, width=rng.choice([1, 8]))
            )
            instructions.append(AluImm("la", "buf", load_off, "add"))
            instructions.append(Load(dst, base="la", width=rng.choice([1, 8])))
        elif kind < 0.75:
            # Plain memory traffic.
            offset = rng.randrange(0, BUF_BYTES - 8, 8)
            instructions.append(AluImm("la", "buf", offset, "add"))
            if rng.random() < 0.5:
                instructions.append(Store(base="la", src=a, width=8))
            else:
                instructions.append(Load(dst, base="la", width=8))
        elif kind < 0.9:
            # A forward branch over some work (possibly mispredicted).
            label = f"skip{label_counter}"
            label_counter += 1
            cond = rng.choice(REGS)
            if rng.random() < 0.4:
                instructions.append(MovImm(cond, rng.choice([0, 1])))
            instructions.append(Jz(cond, label))
            instructions.append(AluImm(dst, a, 7, "add"))
            offset = rng.randrange(0, BUF_BYTES - 8, 8)
            instructions.append(AluImm("la", "buf", offset, "add"))
            instructions.append(Store(base="la", src=dst, width=8))
            instructions.append(Label(label))
        else:
            instructions.append(Mfence())
    instructions.append(Halt())
    return instructions


def run_both(seed: int, blocks: int) -> tuple[dict, dict, bytes, bytes]:
    """Run the same program on a pipelined machine and on the reference
    interpreter (each with its own fresh machine); return regs + memory."""
    rng = random.Random(seed)
    instructions = random_program(rng, blocks)

    def execute(use_pipeline: bool):
        machine = Machine(seed=seed)
        process = machine.kernel.create_process("diff")
        buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
        machine.kernel.write(process, buf, bytes(range(256)) * (BUF_BYTES // 256))
        program = machine.load_program(process, Program(instructions, name="diff"))
        regs = {"buf": buf}
        if use_pipeline:
            result = machine.run(process, program, regs, max_steps=400_000)
            final = result.regs
        else:
            final = ReferenceInterpreter(machine.kernel, process).run(program, regs)
        memory = machine.kernel.read(process, buf, BUF_BYTES)
        return final, memory

    pipe_regs, pipe_mem = execute(use_pipeline=True)
    ref_regs, ref_mem = execute(use_pipeline=False)
    return pipe_regs, ref_regs, pipe_mem, ref_mem


def architectural(regs: dict) -> dict:
    """Registers that carry program results (drop address temporaries)."""
    return {name: regs.get(name, 0) for name in REGS}


class TestDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_fixed_seeds(self, seed):
        pipe_regs, ref_regs, pipe_mem, ref_mem = run_both(seed, blocks=30)
        assert architectural(pipe_regs) == architectural(ref_regs)
        assert pipe_mem == ref_mem

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1000, 100_000), st.integers(5, 40))
    def test_random_programs(self, seed, blocks):
        pipe_regs, ref_regs, pipe_mem, ref_mem = run_both(seed, blocks)
        assert architectural(pipe_regs) == architectural(ref_regs)
        assert pipe_mem == ref_mem

    def test_speculation_actually_happened(self):
        """Sanity: the generator does produce transient windows (the
        differential result would be vacuous otherwise)."""
        rng = random.Random(3)
        instructions = random_program(rng, 40)
        machine = Machine(seed=3)
        process = machine.kernel.create_process("diff")
        buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
        program = machine.load_program(process, Program(instructions, name="x"))
        result = machine.run(process, program, {"buf": buf}, max_steps=400_000)
        assert result.events, "expected at least one predictor consultation"
