"""Differential testing: speculative pipeline vs reference interpreter.

Whatever the predictors guessed — bypasses, predictive forwards, branch
mispredictions — every squash must repair architectural state exactly.
Random programs (with deliberately speculation-heavy patterns) must end
with identical registers and identical memory under both executors.

The program generator and the dual-execution machinery now live in the
fuzzing subsystem (:mod:`repro.fuzz.gen`, :mod:`repro.fuzz.harness`);
these tests drive the same code paths the ``repro-fuzz`` campaign does.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import Program
from repro.cpu.machine import Machine
from repro.fuzz.gen import BUF_PAGES, random_program
from repro.fuzz.harness import check_case


def assert_convergent(seed: int, blocks: int, generator: str = "diff-v1") -> None:
    # Default tracking compares *every* written register (minus Rdpru
    # destinations) — stronger than the historical r0..r3 check.
    report = check_case(generator, seed, blocks)
    assert report.divergence is None, report.divergence.describe()


class TestDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_fixed_seeds(self, seed):
        assert_convergent(seed, blocks=30)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1000, 100_000), st.integers(5, 40))
    def test_random_programs(self, seed, blocks):
        assert_convergent(seed, blocks)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 100_000), st.integers(5, 40))
    def test_fuzz_generator_programs(self, seed, blocks):
        """The richer fuzzing templates must satisfy the same contract."""
        assert_convergent(seed, blocks, generator="fuzz-v1")

    def test_speculation_actually_happened(self):
        """Sanity: the generator does produce transient windows (the
        differential result would be vacuous otherwise)."""
        rng = random.Random(3)
        instructions = random_program(rng, 40)
        machine = Machine(seed=3)
        process = machine.kernel.create_process("diff")
        buf = machine.kernel.map_anonymous(process, pages=BUF_PAGES)
        program = machine.load_program(process, Program(instructions, name="x"))
        result = machine.run(process, program, {"buf": buf}, max_steps=400_000)
        assert result.events, "expected at least one predictor consultation"
