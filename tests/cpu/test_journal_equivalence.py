"""Property test: delta-journal restore == the old full-copy restore.

The pipeline's rollback machinery keeps an undo journal instead of
copying the register file at every snapshot (see ``_Snapshot`` in
:mod:`repro.cpu.pipeline`).  This test pins the equivalence the design
relies on: at every ``_restore`` during randomized speculation-heavy
fuzz programs, undoing the journal must leave ``regs``/``ready`` exactly
— including dict insertion order — as a full copy taken at ``_snapshot``
time would have.

The programs come from the campaign fuzz generator, so the nesting
shapes covered are the ones production runs actually produce: branch
windows containing speculated loads, memory squashes cancelling stale
windows, fault windows, and repeated restores of the same rollback
point after a replay.

The property is checked under *both* execution engines: the compiled
closure engine (:mod:`repro.cpu.compiler`) inherits the base class's
``_snapshot``/``_restore``, so the same shadow wrap verifies that its
dispatch closures drive the journal identically.  Every case also runs
under a mitigation mode (cycled across ``none``/``ssbd``/``fence``) so
mitigation-induced scheduling differences cannot hide a journal bug.
"""

import random

import pytest

from repro.cpu import pipeline as pipeline_mod
from repro.fuzz.gen import fuzz_program
from repro.fuzz.harness import MITIGATIONS, execute_program

ENGINES = ("interpreter", "compiled")


@pytest.fixture()
def shadow_verifier(monkeypatch):
    """Wrap _snapshot/_restore with a full-copy shadow checker."""
    state = {"snapshots": {}, "restores": 0, "failures": []}
    orig_snapshot = pipeline_mod._ExecState._snapshot
    orig_restore = pipeline_mod._ExecState._restore

    def snapshot(self):
        snap = orig_snapshot(self)
        # What the pre-optimization code would have stored.
        state["snapshots"][snap] = (dict(self.regs), dict(self.ready))
        return snap

    def restore(self, snap):
        orig_restore(self, snap)
        want_regs, want_ready = state["snapshots"][snap]
        state["restores"] += 1
        if self.regs != want_regs or list(self.regs) != list(want_regs):
            state["failures"].append(("regs", self.regs, want_regs))
        if self.ready != want_ready or list(self.ready) != list(want_ready):
            state["failures"].append(("ready", self.ready, want_ready))

    monkeypatch.setattr(pipeline_mod._ExecState, "_snapshot", snapshot)
    monkeypatch.setattr(pipeline_mod._ExecState, "_restore", restore)
    return state


def run_fuzz_case(seed: int, blocks: int = 12, engine: str = "interpreter",
                  mitigation: str = "none"):
    """One speculation-heavy program on a fresh machine (faults become
    statuses, so every case contributes its restores to the shadow)."""
    instructions = fuzz_program(random.Random(seed), blocks)
    return execute_program(instructions, seed=seed, engine=engine,
                           mitigation=mitigation)


@pytest.mark.parametrize("engine", ENGINES)
def test_journal_restore_matches_full_copy(shadow_verifier, engine):
    for seed in range(40):
        run_fuzz_case(seed, engine=engine)
    assert shadow_verifier["failures"] == []
    # The corpus must actually have exercised rollbacks, or the property
    # was vacuous.  40 speculation-heavy programs produce hundreds.
    assert shadow_verifier["restores"] > 50


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("mitigation", MITIGATIONS)
def test_journal_restore_under_mitigations(shadow_verifier, engine, mitigation):
    """Mitigations suppress (but do not eliminate) speculation; what
    rollbacks remain must still restore exactly."""
    for seed in range(12):
        run_fuzz_case(seed, engine=engine, mitigation=mitigation)
    assert shadow_verifier["failures"] == []


@pytest.mark.parametrize("engine", ENGINES)
def test_journal_restore_same_snapshot_twice(shadow_verifier, engine):
    """A replayed load can squash again: the same rollback point must
    restore correctly a second time after the journal regrew."""
    for seed in (97, 98, 99, 100, 101):
        run_fuzz_case(seed, blocks=20, engine=engine)
    assert shadow_verifier["failures"] == []


def test_journal_empty_outside_speculation():
    """The non-speculative fast path must not accumulate journal entries
    (that would be a leak: one tuple per register write, forever)."""
    captured = {}
    orig_execute = pipeline_mod._ExecState.execute

    def execute(self, max_steps):
        result = orig_execute(self, max_steps)
        captured["journal"] = list(self._journal)
        captured["jlive"] = self._jlive
        return result

    pipeline_mod._ExecState.execute = execute
    try:
        run_fuzz_case(7)
    finally:
        pipeline_mod._ExecState.execute = orig_execute
    assert captured["journal"] == []
    assert captured["jlive"] == 0
