"""Pipeline edge cases: queue pressure, fences, widths, faults."""

import pytest

from repro.cpu.isa import (
    AluImm,
    Clflush,
    Halt,
    ImulImm,
    Load,
    Mfence,
    Mov,
    MovImm,
    Pad,
    Program,
    Store,
)
from repro.cpu.machine import Machine
from repro.errors import SegmentationFault, SimulationLimitExceeded


@pytest.fixture()
def machine():
    return Machine(seed=99)


@pytest.fixture()
def process(machine):
    return machine.kernel.create_process("edge")


def run(machine, process, instructions, regs=None, **kwargs):
    program = machine.load_program(process, Program(instructions, name="edge"))
    return machine.run(process, program, regs, **kwargs)


class TestStoreQueuePressure:
    def test_many_ready_stores_commit_continuously(self, machine, process):
        """More stores than SQ entries succeed because ready stores
        drain as execution proceeds."""
        buf = machine.kernel.map_anonymous(process, pages=2)
        instructions = [MovImm("v", 7)]
        for index in range(200):  # > 64 SQ entries
            instructions.append(AluImm("a", "base", index * 8, "add"))
            instructions.append(Store(base="a", src="v", width=8))
        instructions.append(Halt())
        result = run(machine, process, instructions, {"base": buf})
        assert result.fault is None
        assert machine.kernel.read(process, buf + 8 * 199, 1)[0] == 7

    def test_unresolvable_head_overflows_queue(self, machine, process):
        """A head store whose address resolves far in the future blocks
        in-order commit; piling 70 more stores overflows the queue."""
        buf = machine.kernel.map_anonymous(process, pages=2)
        instructions = [MovImm("v", 1), Mov("slow", "base")]
        instructions += [ImulImm("slow", "slow", 1)] * 80
        instructions.append(Store(base="slow", src="v", width=8))
        for index in range(70):
            instructions.append(AluImm("a", "base", 8 + index * 8, "add"))
            instructions.append(Store(base="a", src="v", width=8))
        instructions.append(Halt())
        with pytest.raises(SimulationLimitExceeded, match="store queue"):
            run(machine, process, instructions, {"base": buf})


class TestFences:
    def test_mfence_orders_store_before_load(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        instructions = [
            Mov("slow", "base"),
            *[ImulImm("slow", "slow", 1)] * 20,
            MovImm("v", 0xAB),
            Store(base="slow", src="v", width=1),
            Mfence(),
            Load("out", base="base", width=1),
            Halt(),
        ]
        result = run(machine, process, instructions, {"base": buf})
        # After the fence the load cannot race: no events, correct value.
        assert result.regs["out"] == 0xAB
        assert result.events == []

    def test_double_fence_is_harmless(self, machine, process):
        result = run(machine, process, [Mfence(), Mfence(), MovImm("x", 1), Halt()])
        assert result.regs["x"] == 1


class TestWidths:
    def test_wide_store_narrow_load_forwards_low_byte(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        instructions = [
            MovImm("v", 0x1234),
            Store(base="base", src="v", width=8),
            Load("out", base="base", width=1),
            Halt(),
        ]
        result = run(machine, process, instructions, {"base": buf})
        assert result.regs["out"] == 0x34

    def test_narrow_store_wide_load_merges(self, machine, process):
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf, bytes(range(8)))
        instructions = [
            MovImm("v", 0xFF),
            Store(base="base", src="v", width=1),
            Mfence(),
            Load("out", base="base", width=8),
            Halt(),
        ]
        result = run(machine, process, instructions, {"base": buf})
        assert result.regs["out"] == int.from_bytes(
            bytes([0xFF, 1, 2, 3, 4, 5, 6, 7]), "little"
        )

    def test_speculative_narrow_store_wide_load_merges_after_squash(
        self, machine, process
    ):
        """An aliasing 1-byte store under an 8-byte racing load: partial
        overlap cannot forward, but the replayed value must merge."""
        buf = machine.kernel.map_anonymous(process, pages=1)
        machine.kernel.write(process, buf, bytes([9] * 8))
        instructions = [
            Mov("slow", "base"),
            *[ImulImm("slow", "slow", 1)] * 20,
            MovImm("v", 0xEE),
            Store(base="slow", src="v", width=1),
            Load("out", base="base", width=8),
            Halt(),
        ]
        result = run(machine, process, instructions, {"base": buf})
        expected = int.from_bytes(bytes([0xEE] + [9] * 7), "little")
        assert result.regs["out"] == expected
        assert result.rollbacks == 1  # predicted non-aliasing, was aliasing


class TestMisc:
    def test_pad_instructions_execute(self, machine, process):
        result = run(machine, process, [Pad(), Pad(), MovImm("x", 3), Halt()])
        assert result.regs["x"] == 3

    def test_store_to_unmapped_faults_immediately(self, machine, process):
        with pytest.raises(SegmentationFault):
            run(
                machine,
                process,
                [MovImm("a", 0xBAD0000), MovImm("v", 1), Store(base="a", src="v"), Halt()],
            )

    def test_clflush_unmapped_faults(self, machine, process):
        with pytest.raises(SegmentationFault):
            run(machine, process, [MovImm("a", 0xBAD0000), Clflush(base="a"), Halt()])

    def test_program_without_halt_terminates(self, machine, process):
        result = run(machine, process, [MovImm("x", 5)])
        assert result.regs["x"] == 5

    def test_max_steps_enforced(self, machine, process):
        from repro.cpu.isa import Jz, Label

        # An infinite loop: Jz with cond always zero jumping backward.
        instructions = [
            Label("top"),
            MovImm("z", 0),
            Jz("z", "top"),
            Halt(),
        ]
        with pytest.raises(SimulationLimitExceeded):
            run(machine, process, instructions, max_steps=500)
