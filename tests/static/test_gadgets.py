"""Gadget classification: each oracle channel maps to a static kind."""

from repro.cpu.isa import (
    Clflush,
    Halt,
    Jz,
    Label,
    Load,
    Mfence,
    MovImm,
    Program,
    Store,
)
from repro.fuzz.gen import build_program
from repro.static.gadgets import GADGET_KINDS, scan_program


def _kinds(report):
    return sorted({gadget.kind for gadget in report.gadgets})


class TestKinds:
    def test_clean_program(self):
        report = scan_program([MovImm("r0", 1), Halt()])
        assert report.clean
        assert report.gadgets == [] and report.kinds() == {}

    def test_architectural_secret_value(self):
        report = scan_program([Load("r0", base="buf"), Halt()])
        assert _kinds(report) == ["architectural-secret-value"]
        (gadget,) = report.gadgets
        assert gadget.channel == "arch"
        assert gadget.sources == (0,)
        assert gadget.node == 1                      # anchored at the halt
        assert "r0" in gadget.detail

    def test_untracked_register_is_ignored(self):
        report = scan_program([Load("scratch", base="buf"), Halt()])
        assert report.clean
        flagged = scan_program(
            [Load("scratch", base="buf"), Halt()], tracked=("scratch",)
        )
        assert not flagged.clean

    def test_transmit_load(self):
        report = scan_program([
            Load("s", base="buf"),          # 0: secret
            Load("t", base="s"),            # 1: secret-named address
            Halt(),
        ])
        assert "transmit-load" in _kinds(report)
        gadget = next(g for g in report.gadgets if g.kind == "transmit-load")
        assert gadget.node == 1 and gadget.channel == "arch"
        assert 0 in gadget.sources

    def test_transmit_store_and_flush(self):
        base = [Load("s", base="buf")]
        store = scan_program(base + [Store(base="s", src="s"), Halt()])
        flush = scan_program(base + [Clflush(base="s"), Halt()])
        assert "transmit-store" in _kinds(store)
        assert "transmit-flush" in _kinds(flush)

    def test_transmit_branch(self):
        report = scan_program([
            Load("s", base="buf"),
            Jz("s", "end"),
            Label("end"),
            Halt(),
        ])
        assert "transmit-branch" in _kinds(report)

    def test_stale_value_probe_fires_on_aliasing_bypass(self):
        report = scan_program([
            MovImm("v", 7),
            Store(base="buf", src="v", offset=0),
            Load("r0", base="buf", offset=0),
            Halt(),
        ])
        probes = [g for g in report.gadgets if g.kind == "stale-value-probe"]
        assert [g.node for g in probes] == [2]
        assert probes[0].channel == "spec"

    def test_disjoint_known_ranges_never_probe(self):
        report = scan_program([
            MovImm("v", 7),
            Store(base="buf", src="v", offset=0),
            Load("r0", base="buf", offset=256),
            Halt(),
        ])
        assert all(g.kind != "stale-value-probe" for g in report.gadgets)

    def test_fence_between_kills_the_probe(self):
        report = scan_program([
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Mfence(),
            Load("r0", base="buf"),
            Halt(),
        ])
        assert report.clean


class TestMitigations:
    PROGRAM = [
        MovImm("v", 7),
        Store(base="buf", src="v"),
        Load("r0", base="buf"),
        Halt(),
    ]

    def test_ssbd_and_fence_scans_are_clean(self):
        assert not scan_program(self.PROGRAM, mitigation="none").clean
        assert scan_program(self.PROGRAM, mitigation="ssbd").clean
        assert scan_program(self.PROGRAM, mitigation="fence").clean

    def test_purely_bypass_fed_gadgets_name_their_killers(self):
        report = scan_program(self.PROGRAM, mitigation="none")
        for gadget in report.gadgets:
            assert gadget.channel == "spec"
            assert gadget.killed_by == ("ssbd", "fence")

    def test_architectural_gadgets_have_no_killer(self):
        report = scan_program([Load("r0", base="buf"), Halt()])
        (gadget,) = report.gadgets
        assert gadget.killed_by == ()


class TestReportShape:
    def test_gadgets_sorted_and_kinds_counted(self):
        report = scan_program(build_program("fuzz-v1", 5, 8))
        order = [(g.node, GADGET_KINDS.index(g.kind)) for g in report.gadgets]
        assert order == sorted(order)
        assert sum(report.kinds().values()) == len(report.gadgets)

    def test_to_dict_round_trips_through_json(self):
        import json

        report = scan_program(build_program("fuzz-v1", 5, 8))
        data = json.loads(json.dumps(report.to_dict()))
        assert data["instructions"] == report.instructions
        assert data["clean"] is report.clean
        assert len(data["gadgets"]) == len(report.gadgets)

    def test_scan_is_deterministic(self):
        program = build_program("oracle-v1", 9, 12)
        assert (
            scan_program(program).to_dict()
            == scan_program(program).to_dict()
        )

    def test_name_defaults(self):
        assert scan_program([Halt()]).name == "program"
        assert scan_program(Program([Halt()], name="x")).name == "x"
        assert scan_program([Halt()], name="y").name == "y"

    def test_preconditions_cite_the_predictors(self):
        report = scan_program([
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Load("r0", base="buf"),
            Halt(),
        ])
        (probe,) = [g for g in report.gadgets if g.kind == "stale-value-probe"]
        text = " ".join(probe.preconditions)
        assert "ssbp-predicts-nonalias" in text and "psfp-armed" in text
