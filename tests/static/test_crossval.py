"""Cross-validation: the scanner's soundness contract, tested."""

import json

import pytest

from repro.errors import ArtifactError
from repro.fuzz.corpus import REGRESSION_ENTRIES
from repro.static.crossval import (
    AGREEMENT_CELLS,
    agreement_matrix,
    build_cases,
    run_case,
    run_crossval,
)


class TestBuildCases:
    def test_corpus_cases_come_first_per_mitigation(self):
        cases = build_cases(mitigations=("none", "ssbd"))
        assert len(cases) == 2 * len(REGRESSION_ENTRIES)
        assert all(case["source"] == "corpus" for case in cases)
        assert [case["case"] for case in cases] == list(range(len(cases)))

    def test_budget_appends_generated_cases(self):
        cases = build_cases(budget=2, seed=1, mitigations=("none",))
        generated = [case for case in cases if case["source"] == "generated"]
        # 2 derived programs x (fuzz-v1 + oracle-v1) x 1 mitigation
        assert len(generated) == 4
        assert {case["generator"] for case in generated} == {
            "fuzz-v1", "oracle-v1",
        }

    def test_unknown_mitigation_raises(self):
        with pytest.raises(ArtifactError):
            build_cases(mitigations=("prayer",))

    def test_findings_shrunk_reproducers_replay(self, tmp_path):
        from repro.fuzz.findings import Finding, write_findings

        finding = Finding(
            kind="leak", generator="oracle-v1", seed=3, blocks=2,
            cpu_model="ryzen9-5900x", mitigation="none", task=0,
            origin="generated", label="g",
            shrunk={"instructions": ["Halt()"], "count": 1,
                    "original_count": 1},
        )
        path = tmp_path / "f.jsonl"
        write_findings(path, [finding])
        cases = build_cases(findings=[path], mitigations=("none",))
        shrunk = [case for case in cases if case["source"] == "shrunk"]
        assert len(shrunk) == 1
        assert shrunk[0]["instructions"] == ["Halt()"]
        assert shrunk[0]["mitigation"] == "none"


class TestRunCase:
    def _case(self, **overrides):
        case = {
            "case": 0, "source": "generated", "generator": "oracle-v1",
            "seed": 1, "blocks": 2, "label": "t", "mitigation": "none",
            "instructions": None, "cpu_model": "",
        }
        case.update(overrides)
        return case

    def test_row_lands_in_exactly_one_cell(self):
        row = run_case(self._case())
        assert row["cell"] in AGREEMENT_CELLS
        assert row["static_positive"] == (row["static_gadgets"] > 0)
        assert row["dynamic_positive"] == (row["dynamic_kind"] is not None)

    def test_explicit_instructions_override_generation(self):
        row = run_case(self._case(instructions=["Halt()"]))
        assert row["cell"] == "both-negative"

    def test_matrix_counts_every_cell(self):
        rows = [{"cell": "both-negative"}, {"cell": "both-negative"},
                {"cell": "static-only"}]
        matrix = agreement_matrix(rows)
        assert matrix == {
            "both-positive": 0, "static-only": 1,
            "dynamic-only": 0, "both-negative": 2,
        }
        assert list(matrix) == list(AGREEMENT_CELLS)


class TestSoundness:
    def test_corpus_and_generated_cases_are_sound(self):
        report = run_crossval(budget=2, seed=0)
        assert report.sound, (
            "soundness violations: "
            + json.dumps(report.violations, indent=2)
        )
        assert report.matrix()["dynamic-only"] == 0
        assert not report.failures
        # The regression corpus exists because those programs leak: the
        # scanner must flag every one of them under "none".
        unmitigated = [
            row for row in report.rows
            if row["source"] == "corpus" and row["mitigation"] == "none"
        ]
        assert unmitigated and all(
            row["static_positive"] for row in unmitigated
        )

    def test_report_is_identical_across_job_counts(self):
        serial = run_crossval(budget=1, seed=3, jobs=1)
        parallel = run_crossval(budget=1, seed=3, jobs=2)
        assert serial.to_dict() == parallel.to_dict()
        assert (
            json.dumps(serial.to_dict(), sort_keys=True)
            == json.dumps(parallel.to_dict(), sort_keys=True)
        )

    def test_described_sources_is_stable(self):
        report = run_crossval(budget=1, seed=3, mitigations=("none",))
        assert "corpus" in report.described_sources()
        assert "generated" in report.described_sources()

    def test_to_dict_carries_schema_and_matrix(self):
        report = run_crossval(mitigations=("ssbd",))
        data = report.to_dict()
        assert data["schema"] == 1
        assert data["cases"] == len(report.rows)
        assert data["sound"] is report.sound
        assert set(data["matrix"]) == set(AGREEMENT_CELLS)
