"""The fence advisor: minimal placement with re-scan proof."""

import pytest

from repro.cpu.isa import Halt, Load, Mfence, MovImm, Store
from repro.errors import ConfigError
from repro.fuzz.gen import build_program
from repro.mitigations.fences import count_fences, fence_after, fence_after_stores
from repro.static.advisor import advise


class TestFenceAfter:
    def test_inserts_after_each_index(self):
        program = [MovImm("a", 1), MovImm("b", 2), Halt()]
        patched = fence_after(program, [0, 1])
        assert [type(i).__name__ for i in patched] == [
            "MovImm", "Mfence", "MovImm", "Mfence", "Halt",
        ]

    def test_duplicates_collapse_and_input_is_untouched(self):
        program = [MovImm("a", 1), Halt()]
        patched = fence_after(program, [0, 0])
        assert count_fences(patched) == 1
        assert count_fences(program) == 0

    def test_out_of_range_raises(self):
        with pytest.raises(ConfigError):
            fence_after([Halt()], [5])
        with pytest.raises(ConfigError):
            fence_after([Halt()], [-1])

    def test_empty_positions_are_a_copy(self):
        program = [Halt()]
        assert fence_after(program, []) == program


class TestAdvise:
    def test_single_edge_gets_a_single_fence(self):
        plan = advise([
            MovImm("v", 7),                    # 0
            Store(base="buf", src="v"),        # 1
            Load("r0", base="buf"),            # 2
            Halt(),                            # 3
        ])
        assert plan.positions == (1,)          # right before the load
        assert not plan.before.clean
        assert plan.bypass_clean
        assert plan.after.clean
        assert isinstance(plan.patched[2], Mfence)

    def test_one_fence_covers_every_load_behind_the_same_store(self):
        plan = advise([
            MovImm("v", 7),                        # 0
            Store(base="buf", src="v", offset=0),  # 1
            Load("r0", base="buf", offset=0),      # 2
            Load("r1", base="buf", offset=0),      # 3
            Halt(),                                # 4
        ])
        assert len(plan.positions) == 1
        assert plan.bypass_clean

    def test_fewer_fences_than_the_blanket_transform(self):
        program = [
            MovImm("v", 7),                          # 0
            Store(base="buf", src="v", offset=0),    # 1
            Store(base="buf", src="v", offset=64),   # 2
            Store(base="buf", src="v", offset=128),  # 3
            Load("r0", base="buf", offset=0),        # 4
            Halt(),                                  # 5
        ]
        plan = advise(program)
        assert plan.bypass_clean
        assert len(plan.positions) < count_fences(fence_after_stores(program))

    def test_clean_program_needs_no_fences(self):
        plan = advise([MovImm("r0", 1), Halt()])
        assert plan.positions == ()
        assert plan.before.clean and plan.after.clean

    def test_residual_gadgets_are_the_unfixable_ones(self):
        plan = advise([
            Load("r0", base="buf"),            # architectural, fence-immune
            Halt(),
        ])
        assert plan.positions == ()
        assert plan.bypass_clean               # nothing spec-fed remains
        assert [g.kind for g in plan.residual] == ["architectural-secret-value"]

    def test_generated_programs_come_out_bypass_clean(self):
        for seed in (5, 9, 23):
            plan = advise(build_program("fuzz-v1", seed, 8), name=f"gen-{seed}")
            assert plan.bypass_clean, f"seed {seed} left spec-channel gadgets"
            spec_before = sum(
                1 for g in plan.before.gadgets if g.channel == "spec"
            )
            if spec_before:
                assert plan.positions
            assert len(plan.after.gadgets) <= len(plan.before.gadgets)

    def test_plan_to_dict_is_json_serializable(self):
        import json

        plan = advise(build_program("fuzz-v1", 5, 8))
        data = json.loads(json.dumps(plan.to_dict()))
        assert data["fences"] == len(plan.positions)
        assert data["bypass_clean"] is plan.bypass_clean
