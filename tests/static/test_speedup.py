"""The prefilter's economic argument: scanning beats executing by >=10x.

The ``static.scan`` microbenchmark reports the same ratio informally;
this test pins it as a contract on the exact workload the prefilter
replaces — the programs ``fuzz.dual``-style campaigns would otherwise
run through the dynamic two-fill oracle.
"""

import time

from repro.fuzz.gen import build_program
from repro.fuzz.oracle import leak_check_instructions
from repro.static.gadgets import scan_program

SEEDS = (1001, 1002, 1003, 1004)
BLOCKS = 8


def test_scanner_at_least_10x_faster_than_the_dynamic_oracle():
    programs = [build_program("fuzz-v1", seed, BLOCKS) for seed in SEEDS]

    # Warm both paths once so import/JIT-ish one-time costs don't skew
    # either side of the ratio.
    scan_program(programs[0])
    leak_check_instructions(programs[0], seed=SEEDS[0])

    start = time.perf_counter()
    for _ in range(3):
        for instructions in programs:
            scan_program(instructions)
    static_elapsed = (time.perf_counter() - start) / 3

    start = time.perf_counter()
    for seed, instructions in zip(SEEDS, programs):
        leak_check_instructions(instructions, seed=seed)
    dynamic_elapsed = time.perf_counter() - start

    assert static_elapsed > 0
    ratio = dynamic_elapsed / static_elapsed
    assert ratio >= 10, (
        f"static scan only {ratio:.1f}x faster than dynamic execution "
        f"({static_elapsed * 1e3:.2f}ms vs {dynamic_elapsed * 1e3:.2f}ms "
        f"for {len(programs)} programs)"
    )
