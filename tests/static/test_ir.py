"""Lifting the micro-ISA into the scanner's dataflow IR."""

from repro.cpu.isa import (
    Alu,
    AluImm,
    Clflush,
    Halt,
    Imul,
    ImulImm,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Pad,
    Program,
    Rdpru,
    Store,
)
from repro.static.ir import KINDS, lift


def _program():
    return [
        MovImm("a", 7),                    # 0
        Mov("b", "a"),                     # 1
        Alu("c", "a", "b", "xor"),         # 2
        AluImm("d", "c", 3, "add"),        # 3
        Imul("e", "a", "b"),               # 4
        ImulImm("f", "e", 2),              # 5
        Load("g", base="buf", offset=8, width=4),    # 6
        Store(base="buf", src="g", offset=16),       # 7
        Clflush(base="buf", offset=64),              # 8
        Mfence(),                          # 9
        Rdpru("t"),                        # 10
        Jz("c", "end"),                    # 11
        Pad(),                             # 12
        Label("end"),                      # 13
        Halt(),                            # 14
    ]


class TestLift:
    def test_every_node_kind_is_known(self):
        ir = lift(_program())
        assert all(node.kind in KINDS for node in ir)
        assert [node.kind for node in ir] == [
            "alu", "alu", "alu", "alu", "alu", "alu", "load", "store",
            "flush", "fence", "timer", "branch", "nop", "nop", "halt",
        ]

    def test_defs_and_uses(self):
        ir = lift(_program())
        assert ir[2].defs == ("c",) and ir[2].uses == ("a", "b")
        assert ir[6].defs == ("g",) and ir[6].uses == ("buf",)
        assert ir[7].defs == () and ir[7].uses == ("buf", "g")
        assert ir[10].defs == ("t",) and ir[10].uses == ()
        assert ir[11].uses == ("c",)

    def test_memory_facts(self):
        ir = lift(_program())
        assert (ir[6].base, ir[6].offset, ir[6].width) == ("buf", 8, 4)
        assert (ir[7].base, ir[7].offset, ir[7].width) == ("buf", 16, 8)
        assert (ir[8].base, ir[8].offset) == ("buf", 64)

    def test_branch_target_resolved_through_label(self):
        ir = lift(_program())
        assert ir[11].target == 13

    def test_unknown_label_keeps_target_none(self):
        ir = lift([Jz("c", "nowhere"), Halt()])
        assert ir[0].target is None

    def test_lookup_tables(self):
        ir = lift(_program())
        assert ir.loads == (6,)
        assert ir.stores == (7,)
        assert ir.branches == (11,)
        assert ir.fences == (9,)

    def test_accepts_every_program_form(self):
        instructions = _program()
        program = Program(instructions, name="t")
        from_list = lift(instructions)
        from_program = lift(program)
        from_decoded = lift(program.decoded())
        assert (
            [n.source for n in from_list]
            == [n.source for n in from_program]
            == [n.source for n in from_decoded]
        )

    def test_source_is_the_instruction_repr(self):
        ir = lift(_program())
        assert ir[0].source == repr(MovImm("a", 7))

    def test_reprs_sorts_span_indices(self):
        ir = lift(_program())
        assert ir.reprs([7, 2]) == (ir[2].source, ir[7].source)

    def test_len_iter_getitem(self):
        ir = lift(_program())
        assert len(ir) == 15
        assert sum(1 for _ in ir) == 15
        assert ir[14].kind == "halt"
