"""Scan artifacts: canonical serialization and rendering."""

import json

from repro.cpu.isa import Halt, Load, MovImm, Store
from repro.static.advisor import advise
from repro.static.gadgets import scan_program
from repro.static.report import (
    SCAN_SCHEMA,
    canonical,
    render_crossval,
    render_plan,
    render_scan,
    scan_line,
    write_scan_jsonl,
)

LEAKY = [
    MovImm("v", 7),
    Store(base="buf", src="v"),
    Load("r0", base="buf"),
    Halt(),
]


class TestCanonical:
    def test_sorted_keys_fixed_separators(self):
        assert canonical({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_scan_line_is_schema_stamped_canonical_json(self):
        report = scan_program(LEAKY, name="leaky")
        line = scan_line(report, extra_key=1)
        data = json.loads(line)
        assert data["schema"] == SCAN_SCHEMA
        assert data["name"] == "leaky"
        assert data["extra_key"] == 1
        assert line == canonical(data)

    def test_write_scan_jsonl_round_trips(self, tmp_path):
        reports = [
            scan_program(LEAKY, name="a"),
            scan_program([Halt()], name="b"),
        ]
        path = write_scan_jsonl(tmp_path / "scan.jsonl", reports)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
        # Pre-rendered lines pass through untouched.
        again = write_scan_jsonl(tmp_path / "again.jsonl", lines)
        assert again.read_text() == path.read_text()


class TestRendering:
    def test_render_scan_names_the_verdict(self):
        clean = render_scan(scan_program([Halt()], name="c"))
        assert "CLEAN" in clean
        dirty = render_scan(scan_program(LEAKY, name="d"), verbose=True)
        assert "gadget(s)" in dirty
        assert "stale-value-probe" in dirty
        assert "needs:" in dirty            # verbose mode prints preconditions

    def test_render_plan_reports_the_proof(self):
        text = render_plan(advise(LEAKY, name="p"))
        assert "1 fence(s)" in text
        assert "eliminated" in text

    def test_render_crossval_prints_matrix_and_verdict(self):
        from repro.static.crossval import CrossValReport

        sound = CrossValReport(rows=[{
            "case": 0, "source": "corpus", "generator": "g", "seed": 1,
            "blocks": 2, "label": "l", "mitigation": "none",
            "cell": "both-positive",
        }])
        assert "SOUND" in render_crossval(sound)
        violated = CrossValReport(rows=[{
            "case": 0, "source": "corpus", "generator": "g", "seed": 1,
            "blocks": 2, "label": "l", "mitigation": "none",
            "cell": "dynamic-only", "dynamic_kind": "leak",
        }])
        text = render_crossval(violated)
        assert "SOUNDNESS VIOLATIONS" in text and "seed=1" in text
