"""Taint-propagation semantics: coverage, sources, merges, folding."""

from repro.cpu.isa import (
    Alu,
    AluImm,
    Halt,
    Jz,
    Label,
    Load,
    Mfence,
    Mov,
    MovImm,
    Store,
)
from repro.static.ir import lift
from repro.static.taint import analyze_taint
from repro.static.windows import branch_windows, bypass_edges


def _analyze(instructions, mitigation="none"):
    ir = lift(instructions)
    return analyze_taint(ir, bypass_edges(ir, mitigation), branch_windows(ir))


class TestSources:
    def test_uncovered_buffer_load_is_an_architectural_source(self):
        taint = _analyze([Load("r0", base="buf"), Halt()])
        assert taint.sources == {0: "uncovered-load"}
        assert taint.regs["r0"].arch == frozenset({0})
        assert taint.regs["r0"].spec == frozenset({0})

    def test_foreign_pointer_load_is_an_architectural_source(self):
        taint = _analyze([Load("r0", base="mystery"), Halt()])
        assert taint.sources == {0: "foreign-load"}
        assert taint.regs["r0"].arch == frozenset({0})

    def test_covered_load_is_clean(self):
        taint = _analyze([
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Mfence(),                       # sever the bypass edge
            Load("r0", base="buf"),
            Halt(),
        ])
        assert taint.sources == {}
        assert not taint.regs["r0"].tainted

    def test_bypassed_covered_load_gains_only_speculative_taint(self):
        taint = _analyze([
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Load("r0", base="buf"),          # bypass edge 1 -> 2
            Halt(),
        ])
        assert taint.sources == {2: "stale-bypass"}
        assert taint.regs["r0"].arch == frozenset()
        assert taint.regs["r0"].spec == frozenset({2})

    def test_partial_coverage_does_not_count(self):
        taint = _analyze([
            MovImm("v", 7),
            Store(base="buf", src="v", width=4),   # covers bytes 0..4
            Mfence(),
            Load("r0", base="buf", width=8),       # reads bytes 0..8
            Halt(),
        ])
        assert taint.sources == {3: "uncovered-load"}

    def test_ssbd_removes_the_stale_bypass_source(self):
        program = [
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Load("r0", base="buf"),
            Halt(),
        ]
        assert _analyze(program, "ssbd").sources == {}
        assert _analyze(program, "none").sources == {2: "stale-bypass"}


class TestPropagation:
    def test_alu_merges_operand_taint(self):
        taint = _analyze([
            Load("s", base="buf"),
            MovImm("k", 3),
            Alu("r0", "s", "k", "add"),
            Halt(),
        ])
        assert taint.regs["r0"].arch == frozenset({0})

    def test_xor_and_mask_do_not_launder_taint(self):
        taint = _analyze([
            Load("s", base="buf"),
            AluImm("r0", "s", 0, "and"),
            Halt(),
        ])
        assert taint.regs["r0"].arch == frozenset({0})

    def test_tainted_address_taints_the_loaded_value(self):
        taint = _analyze([
            Load("s", base="buf"),          # 0: secret
            Load("r0", base="s"),           # 1: address derived from secret
            Halt(),
        ])
        arch, _spec = taint.address[1]
        assert arch == frozenset({0})
        assert frozenset({0}) <= taint.regs["r0"].arch

    def test_branch_condition_taint_is_recorded(self):
        taint = _analyze([
            Load("s", base="buf"),
            Jz("s", "end"),
            Label("end"),
            Halt(),
        ])
        arch, spec = taint.condition[1]
        assert arch == spec == frozenset({0})

    def test_timer_result_is_untainted(self):
        from repro.cpu.isa import Rdpru

        taint = _analyze([Load("t", base="buf"), Rdpru("t"), Halt()])
        assert not taint.regs["t"].tainted


class TestBranchWindowMerge:
    def test_def_inside_a_window_merges_with_the_prior_value(self):
        taint = _analyze([
            MovImm("r0", 0),                # 0: clean prior value
            Load("s", base="buf"),          # 1: secret
            MovImm("c", 1),                 # 2
            Jz("c", "skip"),                # 3
            Mov("r0", "s"),                 # 4: maybe-executed def
            Label("skip"),                  # 5
            Halt(),                         # 6
        ])
        # Architecturally the Mov may or may not happen — both the clean
        # const and the secret flow into r0's final taint.
        assert taint.regs["r0"].arch == frozenset({1})

    def test_def_outside_any_window_replaces(self):
        taint = _analyze([
            Load("r0", base="buf"),
            MovImm("r0", 0),
            Halt(),
        ])
        assert not taint.regs["r0"].tainted


class TestStoreCoverage:
    def test_covered_load_inherits_stored_data_taint(self):
        taint = _analyze([
            Load("s", base="buf", offset=128),     # 0: secret
            Store(base="buf", src="s", offset=0),  # 1: plants it at 0
            Mfence(),
            Load("r0", base="buf", offset=0),      # 3: covered but tainted
            Halt(),
        ])
        assert 3 not in taint.sources
        assert taint.regs["r0"].arch == frozenset({0})

    def test_maybe_executed_store_adds_no_coverage(self):
        taint = _analyze([
            MovImm("v", 7),
            MovImm("c", 1),
            Jz("c", "skip"),                       # 2
            Store(base="buf", src="v"),            # 3: inside the window
            Label("skip"),
            Mfence(),
            Load("r0", base="buf"),                # 6
            Halt(),
        ])
        assert taint.sources.get(6) == "uncovered-load"

    def test_unplaceable_tainted_store_poisons_existing_coverage(self):
        taint = _analyze([
            Load("s", base="buf", offset=64),      # 0: secret
            MovImm("v", 7),
            Store(base="buf", src="v", offset=0),  # 2: clean coverage at 0
            Store(base="p", src="s"),              # 3: unknown target, tainted
            Mfence(),
            Load("r0", base="buf", offset=0),      # 5
            Halt(),
        ])
        assert frozenset({0}) <= taint.regs["r0"].arch


class TestValueFolding:
    def test_buf_plus_const_offsets_are_tracked(self):
        taint = _analyze([
            AluImm("p", "buf", 64, "add"),
            Load("r0", base="p", offset=0),
            Halt(),
        ])
        assert taint.values[1] == ("buf", 64)

    def test_const_arithmetic_folds(self):
        taint = _analyze([
            MovImm("a", 6),
            AluImm("b", "a", 2, "add"),
            MovImm("c", 2),
            Alu("d", "b", "c", "sub"),
            Store(base="buf", src="d", offset=0),
            Halt(),
        ])
        assert taint.regs["d"].region == "const"
        assert taint.regs["d"].offset == 6

    def test_unknown_operands_stay_unknown(self):
        taint = _analyze([
            Alu("d", "x", "y", "add"),
            Load("r0", base="d"),
            Halt(),
        ])
        assert taint.values[1] == ("unknown", 0)
