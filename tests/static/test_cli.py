"""The repro-scan CLI: determinism, exit codes, artifact discipline."""

import json

import pytest

from repro.errors import ConfigError
from repro.fuzz.corpus import REGRESSION_ENTRIES
from repro.static.cli import main, parse_target


class TestParseTarget:
    def test_valid_target(self):
        assert parse_target("case:fuzz-v1:5:8") == ("fuzz-v1", 5, 8)

    @pytest.mark.parametrize("target", [
        "fuzz-v1:5:8",                 # missing the case: prefix
        "case:fuzz-v1:5",              # missing blocks
        "case:unknown-gen:5:8",        # unknown generator
        "case:fuzz-v1:five:8",         # non-integer seed
    ])
    def test_bad_targets_raise(self, target):
        with pytest.raises(ConfigError):
            parse_target(target)


class TestScan:
    def test_jsonl_byte_identical_across_job_counts(self, tmp_path, capsys):
        out_a = tmp_path / "a.jsonl"
        out_b = tmp_path / "b.jsonl"
        code_a = main([
            "scan", "--no-corpus", "--budget", "2", "--seed", "1",
            "--jobs", "1", "--out", str(out_a),
        ])
        code_b = main([
            "scan", "--no-corpus", "--budget", "2", "--seed", "1",
            "--jobs", "4", "--out", str(out_b),
        ])
        assert code_a == code_b == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        assert "scanned" in capsys.readouterr().out

    def test_default_task_set_is_the_corpus_replay(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        assert main(["scan", "--no-corpus", "--out", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        # built-in regressions x all three mitigations
        assert len(records) == 3 * len(REGRESSION_ENTRIES)
        labels = {record["label"] for record in records}
        assert labels == {entry.label for entry in REGRESSION_ENTRIES}

    def test_explicit_targets_and_single_mitigation(self, tmp_path):
        out = tmp_path / "t.jsonl"
        code = main([
            "scan", "case:fuzz-v1:5:8", "--mitigation", "none",
            "--out", str(out),
        ])
        assert code == 0
        (record,) = [json.loads(line) for line in out.read_text().splitlines()]
        assert record["schema"] == 1
        assert record["mitigation"] == "none"
        assert record["name"] == "fuzz-v1:5:8"

    def test_empty_out_disables_the_artifact(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["scan", "case:fuzz-v1:5:8", "--out", ""]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_bad_target_is_usage_error(self):
        assert main(["scan", "case:nope:1:2"]) == 2

    def test_bad_mitigation_is_usage_error(self):
        assert main(["scan", "case:fuzz-v1:5:8",
                     "--mitigation", "prayer"]) == 2


class TestAdvise:
    def test_advise_prints_plan_and_exits_clean(self, capsys):
        assert main(["advise", "case:fuzz-v1:5:8"]) == 0
        out = capsys.readouterr().out
        assert "fence plan" in out
        assert "eliminated" in out

    def test_verbose_prints_the_before_scan(self, capsys):
        assert main(["advise", "case:fuzz-v1:5:8", "--verbose"]) == 0
        assert "scan of" in capsys.readouterr().out

    def test_bad_target_is_usage_error(self):
        assert main(["advise", "not-a-target"]) == 2


class TestCrossval:
    def test_sound_run_exits_zero_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "agreement.json"
        code = main([
            "crossval", "--no-corpus", "--budget", "1", "--seed", "3",
            "--mitigation", "none", "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["sound"] is True
        assert data["matrix"]["dynamic-only"] == 0
        assert "SOUND" in capsys.readouterr().out

    def test_report_identical_across_job_counts(self, tmp_path):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        args = ["crossval", "--no-corpus", "--budget", "1", "--seed", "3",
                "--mitigation", "none,ssbd"]
        assert main(args + ["--jobs", "1", "--out", str(out_a)]) == 0
        assert main(args + ["--jobs", "4", "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_bad_mitigation_is_usage_error(self):
        assert main(["crossval", "--mitigation", "prayer"]) == 2
