"""Cross-reference: the attack stack's victim gadgets must scan dirty.

The attacks package carries the paper's Listing 2/3 victim functions
(:mod:`repro.attacks.victim_gadgets`); if the scanner cannot flag the
very gadget templates the exploitation layer leaks through, it is not
scanning for the right thing.  Also pins the ``repro.attacks.gadgets``
compatibility shim left behind by the module rename.
"""

from repro.attacks.victim_gadgets import (
    CTL_REGS,
    STL_REGS,
    spectre_ctl_gadget,
    spectre_stl_gadget,
)
from repro.static.gadgets import scan_program


class TestScannerFlagsTheAttackTemplates:
    def test_spectre_stl_gadget(self):
        report = scan_program(spectre_stl_gadget())
        assert not report.clean
        kinds = set(report.kinds())
        # The three-load chain transmits through secret-named cache lines.
        assert "transmit-load" in kinds
        # The delayed store racing younger loads is the bypass surface.
        assert report.edges, "no store->load bypass edge found"

    def test_spectre_ctl_gadget(self):
        report = scan_program(spectre_ctl_gadget())
        assert not report.clean
        assert "transmit-load" in set(report.kinds())
        assert report.edges

    def test_gadgets_flag_even_under_ssbd(self):
        # The victim buffers are *foreign* pointers (attacker treats their
        # memory as secret), so the architectural taint — and the
        # transmit findings — survive the bypass-killing mitigations.
        for builder in (spectre_stl_gadget, spectre_ctl_gadget):
            report = scan_program(builder(), mitigation="ssbd")
            assert not report.clean
            assert all(g.channel == "arch" for g in report.gadgets)

    def test_foreign_load_sources_are_identified(self):
        report = scan_program(spectre_stl_gadget())
        assert "foreign-load" in set(report.sources.values())


class TestRenameShim:
    def test_old_module_path_still_exports_everything(self):
        from repro.attacks import gadgets as shim

        assert shim.spectre_stl_gadget is spectre_stl_gadget
        assert shim.spectre_ctl_gadget is spectre_ctl_gadget
        assert shim.STL_REGS is STL_REGS
        assert shim.CTL_REGS is CTL_REGS

    def test_attacks_package_reexports_from_the_new_home(self):
        import repro.attacks as attacks

        assert attacks.spectre_stl_gadget is spectre_stl_gadget
