"""Speculative-window enumeration: bypass edges and branch spans."""

from repro.cpu.isa import Halt, Jz, Label, Load, Mfence, MovImm, Store
from repro.static.ir import lift
from repro.static.windows import (
    branch_windows,
    bypass_edges,
    bypass_preconditions,
    psf_preconditions,
)


def _store_load():
    return lift([
        MovImm("v", 7),                    # 0
        Store(base="buf", src="v"),        # 1
        Load("r0", base="buf"),            # 2
        Halt(),                            # 3
    ])


class TestBypassEdges:
    def test_every_older_unfenced_store_pairs_with_the_load(self):
        edges = bypass_edges(_store_load())
        assert [(e.store, e.load) for e in edges] == [(1, 2)]

    def test_edges_carry_both_predictor_kinds(self):
        (edge,) = bypass_edges(_store_load())
        assert edge.kinds == ("stl-bypass", "psf-forward")
        assert edge.preconditions == bypass_preconditions() + psf_preconditions()

    def test_fence_between_severs_the_edge(self):
        ir = lift([
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Mfence(),
            Load("r0", base="buf"),
            Halt(),
        ])
        assert bypass_edges(ir) == []

    def test_fence_before_the_store_does_not(self):
        ir = lift([
            Mfence(),
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Load("r0", base="buf"),
            Halt(),
        ])
        assert [(e.store, e.load) for e in bypass_edges(ir)] == [(2, 3)]

    def test_younger_stores_never_pair(self):
        ir = lift([
            Load("r0", base="buf"),
            MovImm("v", 7),
            Store(base="buf", src="v"),
            Halt(),
        ])
        assert bypass_edges(ir) == []

    def test_multiple_stores_all_pair(self):
        ir = lift([
            MovImm("v", 7),
            Store(base="buf", src="v", offset=0),
            Store(base="buf", src="v", offset=8),
            Load("r0", base="buf"),
            Halt(),
        ])
        assert [(e.store, e.load) for e in bypass_edges(ir)] == [(1, 3), (2, 3)]

    def test_ssbd_and_fence_mitigations_kill_every_edge(self):
        ir = _store_load()
        assert bypass_edges(ir, "ssbd") == []
        assert bypass_edges(ir, "fence") == []
        assert bypass_edges(ir, "none") != []

    def test_preconditions_cite_table_i_states(self):
        text = " ".join(bypass_preconditions() + psf_preconditions())
        assert "ssbp-predicts-nonalias" in text
        assert "psfp-armed" in text


class TestBranchWindows:
    def test_forward_branch_spans_to_its_label(self):
        ir = lift([
            MovImm("c", 1),                # 0
            Jz("c", "skip"),               # 1
            MovImm("x", 2),                # 2 (transient span)
            MovImm("y", 3),                # 3 (transient span)
            Label("skip"),                 # 4
            Halt(),                        # 5
        ])
        (window,) = branch_windows(ir)
        assert (window.branch, window.start, window.end) == (1, 2, 4)
        assert window.contains(2) and window.contains(3)
        assert not window.contains(1) and not window.contains(4)

    def test_unknown_label_opens_the_window_to_the_end(self):
        ir = lift([Jz("c", "nowhere"), MovImm("x", 1), Halt()])
        (window,) = branch_windows(ir)
        assert (window.start, window.end) == (1, 3)

    def test_empty_span_yields_no_window(self):
        ir = lift([Jz("c", "here"), Label("here"), Halt()])
        assert branch_windows(ir) == []
