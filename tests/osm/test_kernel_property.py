"""Property tests: kernel memory-management invariants.

Random interleavings of map / write / fork / COW-break / shared-map
operations must preserve the fundamental invariants: private writes
never bleed between processes, shared writes always do, and every
process always reads back its own last write.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import Core
from repro.mem.physical import PAGE_SIZE
from repro.osm.address_space import Perm
from repro.osm.kernel import Kernel


class KernelModel:
    """Oracle: per-process expected byte images of every region."""

    def __init__(self, seed: int) -> None:
        self.kernel = Kernel(Core(seed=seed))
        self.rng = random.Random(seed ^ 0xBEEF)
        root = self.kernel.create_process("root")
        base = self.kernel.map_anonymous(root, pages=2)
        self.processes = [root]
        self.base = base
        # expected[pid] = bytearray image of the region
        self.expected = {root.pid: bytearray(2 * PAGE_SIZE)}
        self.shared_with_root: set[int] = set()

    def op_write(self) -> None:
        process = self.rng.choice(self.processes)
        offset = self.rng.randrange(0, 2 * PAGE_SIZE - 8)
        payload = bytes(self.rng.randrange(256) for _ in range(8))
        self.kernel.write(process, self.base + offset, payload)
        if process.pid in self.shared_with_root:
            # Shared mapping: every sharer sees the write.
            for pid in list(self.shared_with_root) + [self.processes[0].pid]:
                self.expected[pid][offset : offset + 8] = payload
        elif process.pid == self.processes[0].pid and self.shared_with_root:
            for pid in list(self.shared_with_root) + [process.pid]:
                self.expected[pid][offset : offset + 8] = payload
        else:
            self.expected[process.pid][offset : offset + 8] = payload

    def op_fork(self) -> None:
        if self.shared_with_root or len(self.processes) >= 5:
            return  # keep the model simple: fork only private trees
        parent = self.processes[0]
        child = self.kernel.fork(parent)
        self.processes.append(child)
        self.expected[child.pid] = bytearray(self.expected[parent.pid])

    def op_share(self) -> None:
        if len(self.processes) >= 5 or len(self.processes) > 1:
            return  # one sharer, established before any fork, is enough
        root = self.processes[0]
        peer = self.kernel.create_process("peer")
        mapped = self.kernel.map_shared(peer, root, self.base, pages=2)
        assert mapped is not None
        self.peer_base = mapped
        self.processes.append(peer)
        self.expected[peer.pid] = bytearray(self.expected[root.pid])
        self.shared_with_root.add(peer.pid)

    def check(self) -> None:
        for process in self.processes:
            base = (
                self.peer_base
                if process.pid in self.shared_with_root
                else self.base
            )
            actual = self.kernel.read(process, base, 2 * PAGE_SIZE)
            assert actual == bytes(self.expected[process.pid]), process.name

    # write through the peer's own mapping address
    def run(self, ops: list[int]) -> None:
        table = [self.op_write, self.op_fork, self.op_share]
        for op in ops:
            table[op % len(table)]()
            self.check()


class TestKernelInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.lists(st.integers(0, 2), max_size=30))
    def test_random_interleavings(self, seed, ops):
        model = KernelModel(seed)
        # Adjust writes through the peer's own base when shared.
        original_write = model.op_write

        def routed_write():
            process = model.rng.choice(model.processes)
            offset = model.rng.randrange(0, 2 * PAGE_SIZE - 8)
            payload = bytes(model.rng.randrange(256) for _ in range(8))
            base = (
                model.peer_base
                if process.pid in model.shared_with_root
                else model.base
            )
            model.kernel.write(process, base + offset, payload)
            if process.pid in model.shared_with_root or (
                process.pid == model.processes[0].pid and model.shared_with_root
            ):
                affected = set(model.shared_with_root) | {model.processes[0].pid}
            else:
                affected = {process.pid}
            for pid in affected:
                model.expected[pid][offset : offset + 8] = payload

        model.op_write = routed_write
        model.run(ops)

    def test_fork_chain_isolation(self):
        """Writes after a fork chain stay within the writing process."""
        model = KernelModel(77)
        model.op_fork()
        model.op_fork()
        for _ in range(12):
            model.op_write()
            model.check()
