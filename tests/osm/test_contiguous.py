"""Contiguous physical allocation: ``allocate_frame_run``/``map_contiguous``.

These are the kernel primitives the ASLR derandomization attack builds
on — a victim region whose frames form one sequential physical run, so
that recovering the base frame recovers the whole layout.
"""

import pytest

from repro.cpu.core import Core
from repro.errors import ConfigError
from repro.mem.physical import PAGE_SIZE
from repro.osm.address_space import Perm
from repro.osm.kernel import Kernel


@pytest.fixture()
def kernel():
    return Kernel(Core(seed=7))


@pytest.fixture()
def process(kernel):
    return kernel.create_process("victim")


class TestAllocateFrameRun:
    def test_run_is_sequential_and_claimed(self, kernel):
        base = kernel.allocate_frame_run(8)
        # A second allocation can never overlap the claimed run.
        other = kernel.allocate_frame_run(8)
        run = set(range(base, base + 8))
        assert not run & set(range(other, other + 8))

    def test_explicit_placement_is_honoured(self, kernel):
        assert kernel.allocate_frame_run(4, base_frame=0x4000) == 0x4000

    def test_occupied_placement_rejected(self, kernel):
        kernel.allocate_frame_run(4, base_frame=0x4000)
        with pytest.raises(ConfigError):
            kernel.allocate_frame_run(2, base_frame=0x4002)

    def test_run_outside_the_pool_rejected(self, kernel):
        with pytest.raises(ConfigError):
            kernel.allocate_frame_run(4, base_frame=0x0100_0000)

    def test_zero_length_run_rejected(self, kernel):
        with pytest.raises(ConfigError):
            kernel.allocate_frame_run(0)

    def test_random_placement_is_seed_deterministic(self):
        a = Kernel(Core(seed=11)).allocate_frame_run(16)
        b = Kernel(Core(seed=11)).allocate_frame_run(16)
        assert a == b


class TestMapContiguous:
    def test_page_i_sits_in_frame_base_plus_i(self, kernel, process):
        base_va, base_frame = kernel.map_contiguous(process, pages=6)
        space = process.address_space
        for index in range(6):
            mapping = space.mapping((base_va // PAGE_SIZE) + index)
            assert mapping.frame == base_frame + index

    def test_returns_both_halves_of_the_translation(self, kernel, process):
        base_va, base_frame = kernel.map_contiguous(
            process, pages=2, base_frame=0x8000
        )
        assert base_frame == 0x8000
        assert base_va % PAGE_SIZE == 0

    def test_perms_and_kind_apply(self, kernel, process):
        base_va, _ = kernel.map_contiguous(
            process, pages=1, perms=Perm.RX, kind="code"
        )
        mapping = process.address_space.mapping(base_va // PAGE_SIZE)
        assert mapping.perms == Perm.RX

    def test_stats_counter_increments(self, kernel, process):
        before = kernel.stats["map_contiguous"]
        kernel.map_contiguous(process, pages=3)
        assert kernel.stats["map_contiguous"] == before + 1

    def test_double_booking_a_run_fails(self, kernel, process):
        kernel.map_contiguous(process, pages=4, base_frame=0x9000)
        with pytest.raises(ConfigError):
            kernel.map_contiguous(process, pages=4, base_frame=0x9000)
