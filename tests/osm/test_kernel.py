"""Kernel tests: fork/COW, mmap, mprotect, scheduling flush semantics.

These reproduce the mechanics behind the paper's Section III-C selection
experiments and the Section IV-A isolation findings.
"""

import pytest

from repro.cpu.core import Core
from repro.errors import ProtectionFault
from repro.mem.physical import PAGE_SIZE
from repro.osm.address_space import Perm
from repro.osm.domains import SecurityDomain
from repro.osm.kernel import Kernel
from repro.osm.process import ProcessState


@pytest.fixture()
def kernel():
    return Kernel(Core(seed=7))


@pytest.fixture()
def process(kernel):
    return kernel.create_process("victim")


class TestProcessLifecycle:
    def test_pids_increment(self, kernel):
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        assert (a.pid, b.pid) == (1, 2)

    def test_domain(self, kernel):
        kthread = kernel.create_process("kworker", SecurityDomain.KERNEL)
        assert kthread.privileged
        assert not kernel.create_process("user").privileged


class TestMapping:
    def test_map_anonymous_readback(self, kernel, process):
        base = kernel.map_anonymous(process, pages=2)
        kernel.write(process, base + 100, b"hello")
        assert kernel.read(process, base + 100, 5) == b"hello"

    def test_map_anonymous_distinct_frames(self, kernel, process):
        base = kernel.map_anonymous(process, pages=2)
        f0 = process.address_space.mapping(base >> 12).frame
        f1 = process.address_space.mapping((base >> 12) + 1).frame
        assert f0 != f1

    def test_frames_are_randomized(self):
        frames_a = Kernel(Core(seed=1)).allocate_frame()
        frames_b = Kernel(Core(seed=2)).allocate_frame()
        assert frames_a != frames_b  # overwhelmingly likely by construction

    def test_write_without_permission_faults(self, kernel, process):
        base = kernel.map_anonymous(process, pages=1, perms=Perm.R)
        with pytest.raises(ProtectionFault):
            kernel.write(process, base, b"x")

    def test_loader_write_ignores_permissions(self, kernel, process):
        base = kernel.map_anonymous(process, pages=1, perms=Perm.RX)
        kernel.write(process, base, b"\x90\x90", force=True)
        assert kernel.read(process, base, 2) == b"\x90\x90"

    def test_cross_page_write(self, kernel, process):
        base = kernel.map_anonymous(process, pages=2)
        kernel.write(process, base + PAGE_SIZE - 2, b"abcd")
        assert kernel.read(process, base + PAGE_SIZE - 2, 4) == b"abcd"


class TestForkCow:
    """The Section III-C.1 experiment mechanics."""

    def test_fork_shares_ipa_initially(self, kernel, process):
        """After fork, parent and child stld share IVA *and* IPA."""
        base = kernel.map_anonymous(process, pages=1, perms=Perm.RX, kind="code")
        kernel.write(process, base, b"stld-code", force=True)
        child = kernel.fork(process)
        parent_pa = process.address_space.translate_nofault(base)
        child_pa = child.address_space.translate_nofault(base)
        assert parent_pa == child_pa

    def test_cow_break_changes_child_ipa(self, kernel, process):
        """mprotect + dummy write remaps the child's page: same IVA,
        different IPA — the step that broke the collision in the paper."""
        base = kernel.map_anonymous(process, pages=1, perms=Perm.RX, kind="code")
        kernel.write(process, base, b"stld-code", force=True)
        child = kernel.fork(process)
        kernel.mprotect(child, base, pages=1, perms=Perm.RWX)
        kernel.write(child, base + 64, b"dummy")
        parent_pa = process.address_space.translate_nofault(base)
        child_pa = child.address_space.translate_nofault(base)
        assert parent_pa != child_pa
        # The code bytes were preserved by the copy.
        assert kernel.read(child, base, 9) == b"stld-code"

    def test_cow_preserves_parent_view(self, kernel, process):
        base = kernel.map_anonymous(process, pages=1)
        kernel.write(process, base, b"original")
        child = kernel.fork(process)
        kernel.write(child, base, b"modified")
        assert kernel.read(process, base, 8) == b"original"
        assert kernel.read(child, base, 8) == b"modified"

    def test_single_ref_cow_resolves_in_place(self, kernel, process):
        """When only one mapping remains, the COW flag clears without copy."""
        base = kernel.map_anonymous(process, pages=1)
        kernel.write(process, base, b"x")
        child = kernel.fork(process)
        kernel.write(child, base, b"y")  # child copies away
        frame_before = process.address_space.mapping(base >> 12).frame
        kernel.write(process, base, b"z")  # parent is now sole owner
        assert process.address_space.mapping(base >> 12).frame == frame_before

    def test_fork_inherits_layout_cursors(self, kernel, process):
        child = kernel.fork(process)
        assert process.reserve_range(1, "code") == child.reserve_range(1, "code")


class TestSharedMmap:
    def test_same_ipa_different_iva(self, kernel, process):
        """mmap-shared: same IPA reachable at different IVAs — the final
        Section III-C.1 experiment."""
        other = kernel.create_process("attacker")
        kernel.map_anonymous(other, pages=3)  # skew the mmap cursor? no: data
        base = kernel.map_anonymous(process, pages=1, perms=Perm.RX, kind="code")
        shared = kernel.map_shared(other, process, base, pages=1)
        assert (
            process.address_space.translate_nofault(base)
            == other.address_space.translate_nofault(shared)
        )

    def test_shared_pages_survive_fork_as_shared(self, kernel, process):
        other = kernel.create_process("attacker")
        base = kernel.map_anonymous(process, pages=1)
        kernel.map_shared(other, process, base, pages=1)
        child = kernel.fork(process)
        kernel.write(child, base, b"w")  # shared: no COW copy
        assert kernel.read(process, base, 1) == b"w"

    def test_unmapped_source_rejected(self, kernel, process):
        other = kernel.create_process("attacker")
        with pytest.raises(Exception):
            kernel.map_shared(other, process, 0xDEAD0000, pages=1)


class TestSchedulingFlushes:
    """Section IV-A: what survives a context switch, syscall, and sleep."""

    def _train_both(self, kernel, process):
        thread = kernel.core.thread(0)
        kernel.schedule(process)
        unit = thread.unit
        # PSFP entry + SSBP entry, as after (7n,a,...) training.
        unit.psfp.update(1, 2, 4, 16, 2)
        unit.ssbp.update(2, 15, 3)
        return thread

    def test_context_switch_flushes_psfp_not_ssbp(self, kernel, process):
        thread = self._train_both(kernel, process)
        attacker = kernel.create_process("attacker")
        kernel.schedule(attacker)
        assert thread.unit.psfp.occupancy == 0
        assert thread.unit.ssbp.occupancy == 1  # Vulnerability 1

    def test_reschedule_same_process_keeps_psfp(self, kernel, process):
        thread = self._train_both(kernel, process)
        kernel.schedule(process)
        assert thread.unit.psfp.occupancy == 1

    def test_syscall_flushes_psfp(self, kernel, process):
        thread = self._train_both(kernel, process)
        kernel.syscall(process)
        assert thread.unit.psfp.occupancy == 0
        assert thread.unit.ssbp.occupancy == 1

    def test_sleep_flushes_both(self, kernel, process):
        thread = self._train_both(kernel, process)
        kernel.sleep(process)
        assert thread.unit.psfp.occupancy == 0
        assert thread.unit.ssbp.occupancy == 0
        assert process.state is ProcessState.SLEEPING
        kernel.wake(process)
        assert process.state is ProcessState.READY

    def test_mitigation_flushes_ssbp_on_switch(self):
        kernel = Kernel(Core(seed=7), flush_ssbp_on_switch=True)
        victim = kernel.create_process("victim")
        thread = kernel.core.thread(0)
        kernel.schedule(victim)
        thread.unit.ssbp.update(2, 15, 3)
        kernel.schedule(kernel.create_process("attacker"))
        assert thread.unit.ssbp.occupancy == 0

    def test_context_switch_flushes_tlb(self, kernel, process):
        thread = self._train_both(kernel, process)
        thread.tlb.fill(5, 42)
        kernel.schedule(kernel.create_process("attacker"))
        assert thread.tlb.occupancy == 0

    def test_smt_threads_are_partitioned(self, kernel, process):
        """Training on thread 0 must not leak into thread 1's predictors."""
        thread0 = self._train_both(kernel, process)
        thread1 = kernel.core.thread(1)
        assert thread0.unit.ssbp.occupancy == 1
        assert thread1.unit.ssbp.occupancy == 0
        assert thread1.unit is not thread0.unit


class TestPagemapPrivilege:
    def test_kernel_thread_may_translate(self, kernel, process):
        base = kernel.map_anonymous(process, pages=1)
        kthread = kernel.create_process("kworker", SecurityDomain.KERNEL)
        assert kernel.physical_address(process, base, caller=kthread) is not None

    def test_user_process_may_not(self, kernel, process):
        base = kernel.map_anonymous(process, pages=1)
        user = kernel.create_process("attacker")
        with pytest.raises(ProtectionFault):
            kernel.physical_address(process, base, caller=user)
