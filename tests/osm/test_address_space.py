"""Unit tests for address spaces and translation faults."""

import pytest

from repro.errors import ProtectionFault, SegmentationFault
from repro.osm.address_space import AddressSpace, CowFault, PAGE_SIZE, Perm


class TestPerm:
    def test_rw_contains_r_and_w(self):
        assert Perm.R & Perm.RW
        assert Perm.W & Perm.RW
        assert not (Perm.X & Perm.RW)

    def test_none_is_falsy(self):
        assert not Perm.NONE


class TestTranslate:
    def test_basic_translation(self):
        space = AddressSpace()
        space.map_page(0x400, frame=0x99, perms=Perm.RX)
        vaddr = (0x400 << 12) | 0x123
        assert space.translate(vaddr, Perm.R) == (0x99 << 12) | 0x123

    def test_unmapped_faults(self):
        with pytest.raises(SegmentationFault) as info:
            AddressSpace().translate(0x1234)
        assert info.value.address == 0x1234

    def test_write_to_readonly_faults(self):
        space = AddressSpace()
        space.map_page(1, frame=2, perms=Perm.R)
        with pytest.raises(ProtectionFault):
            space.translate(PAGE_SIZE, Perm.W)

    def test_execute_needs_x(self):
        space = AddressSpace()
        space.map_page(1, frame=2, perms=Perm.RW)
        with pytest.raises(ProtectionFault):
            space.translate(PAGE_SIZE, Perm.X)

    def test_cow_write_raises_cowfault(self):
        space = AddressSpace()
        space.map_page(1, frame=2, perms=Perm.RW, cow=True)
        with pytest.raises(CowFault) as info:
            space.translate(PAGE_SIZE, Perm.W)
        assert info.value.va_page == 1

    def test_cow_read_is_fine(self):
        space = AddressSpace()
        space.map_page(1, frame=2, perms=Perm.RW, cow=True)
        assert space.translate(PAGE_SIZE, Perm.R) == 2 * PAGE_SIZE

    def test_nofault_translation(self):
        space = AddressSpace()
        space.map_page(1, frame=2, perms=Perm.NONE)
        assert space.translate_nofault(PAGE_SIZE + 5) == 2 * PAGE_SIZE + 5
        assert space.translate_nofault(0) is None

    def test_unmap(self):
        space = AddressSpace()
        space.map_page(1, frame=2, perms=Perm.R)
        space.unmap_page(1)
        with pytest.raises(SegmentationFault):
            space.translate(PAGE_SIZE)

    def test_fault_describes_access(self):
        space = AddressSpace()
        space.map_page(1, frame=2, perms=Perm.R)
        with pytest.raises(ProtectionFault, match="write"):
            space.translate(PAGE_SIZE, Perm.W)
